//! Parser for the paper's textual query format.
//!
//! Accepts exactly what [`crate::QueryExt::display`] emits (and the minor
//! whitespace/newline variations found in the paper's listings):
//!
//! ```text
//! (SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
//!         {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
//!         {collects, supplies} {supplier, cargo, vehicle})
//! ```

use sqo_catalog::{AttrRef, Catalog, DataType, Value};

use crate::ast::{Projection, Query};
use crate::error::QueryError;
use crate::predicate::{CompOp, JoinPredicate, SelPredicate};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Op(CompOp),
    Ident(String),
    /// `class.attr`
    Path(String, String),
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Syntax { position: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, QueryError> {
        self.skip_ws();
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let tok = match b {
            b'(' => {
                self.bump();
                Token::LParen
            }
            b')' => {
                self.bump();
                Token::RParen
            }
            b'{' => {
                self.bump();
                Token::LBrace
            }
            b'}' => {
                self.bump();
                Token::RBrace
            }
            b',' => {
                self.bump();
                Token::Comma
            }
            b'=' => {
                self.bump();
                Token::Op(CompOp::Eq)
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::Op(CompOp::Ne)
                } else {
                    return Err(self.error("expected `=` after `!`"));
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::Op(CompOp::Le)
                } else if self.peek() == Some(b'>') {
                    self.bump();
                    Token::Op(CompOp::Ne)
                } else {
                    Token::Op(CompOp::Lt)
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::Op(CompOp::Ge)
                } else {
                    Token::Op(CompOp::Gt)
                }
            }
            b'"' => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'"' {
                        break;
                    }
                    self.pos += 1;
                }
                if self.peek() != Some(b'"') {
                    return Err(self.error("unterminated string literal"));
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string literal"))?
                    .to_string();
                self.bump();
                Token::Str(s)
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.bump();
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    match c {
                        b'0'..=b'9' => {
                            self.pos += 1;
                        }
                        b'.' if !is_float
                            && matches!(self.src.get(self.pos + 1), Some(b'0'..=b'9')) =>
                        {
                            is_float = true;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                if is_float {
                    Token::Float(text.parse().map_err(|_| self.error("bad float literal"))?)
                } else {
                    Token::Int(text.parse().map_err(|_| self.error("bad int literal"))?)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'#' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let first =
                    std::str::from_utf8(&self.src[start..self.pos]).expect("ascii").to_string();
                if self.peek() == Some(b'.') {
                    self.bump();
                    let astart = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' || c == b'#' {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    if astart == self.pos {
                        return Err(self.error("expected attribute name after `.`"));
                    }
                    let attr = std::str::from_utf8(&self.src[astart..self.pos])
                        .expect("ascii")
                        .to_string();
                    Token::Path(first, attr)
                } else {
                    match first.as_str() {
                        "true" => Token::Bool(true),
                        "false" => Token::Bool(false),
                        _ => Token::Ident(first),
                    }
                }
            }
            other => {
                return Err(self.error(format!("unexpected byte `{}`", other as char)));
            }
        };
        Ok(Some(tok))
    }
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    cursor: usize,
    catalog: &'a Catalog,
}

impl<'a> Parser<'a> {
    fn new(src: &str, catalog: &'a Catalog) -> Result<Self, QueryError> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let pos = lexer.pos;
            match lexer.next_token()? {
                Some(t) => tokens.push((pos, t)),
                None => break,
            }
        }
        Ok(Self { tokens, cursor: 0, catalog })
    }

    fn error_here(&self, message: impl Into<String>) -> QueryError {
        let position = self
            .tokens
            .get(self.cursor)
            .or_else(|| self.tokens.last())
            .map(|(p, _)| *p)
            .unwrap_or(0);
        QueryError::Syntax { position, message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|(_, t)| t.clone());
        if t.is_some() {
            self.cursor += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), QueryError> {
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            _ => {
                self.cursor = self.cursor.saturating_sub(1);
                Err(self.error_here(format!("expected {what}")))
            }
        }
    }

    fn resolve_attr(&self, class: &str, attr: &str) -> Result<AttrRef, QueryError> {
        Ok(self.catalog.attr_ref(class, attr)?)
    }

    fn value(&mut self, expected: DataType) -> Result<Value, QueryError> {
        let v = match self.bump() {
            Some(Token::Str(s)) => Value::str(s),
            Some(Token::Int(i)) => {
                // Coerce integer literals when the attribute is a float.
                if expected == DataType::Float {
                    Value::float(i as f64).expect("finite")
                } else {
                    Value::Int(i)
                }
            }
            Some(Token::Float(x)) => {
                Value::float(x).ok_or_else(|| self.error_here("float literal must be finite"))?
            }
            Some(Token::Bool(b)) => Value::Bool(b),
            _ => {
                self.cursor = self.cursor.saturating_sub(1);
                return Err(self.error_here("expected a literal value"));
            }
        };
        Ok(v)
    }

    /// Parses one `{ item, item, ... }` group via the item callback.
    fn group<T>(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<T, QueryError>,
    ) -> Result<Vec<T>, QueryError> {
        self.expect(&Token::LBrace, "`{`")?;
        let mut out = Vec::new();
        if self.peek() == Some(&Token::RBrace) {
            self.bump();
            return Ok(out);
        }
        loop {
            out.push(item(self)?);
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RBrace) => break,
                _ => {
                    self.cursor = self.cursor.saturating_sub(1);
                    return Err(self.error_here("expected `,` or `}`"));
                }
            }
        }
        Ok(out)
    }

    fn path(&mut self) -> Result<(String, String), QueryError> {
        match self.bump() {
            Some(Token::Path(c, a)) => Ok((c, a)),
            _ => {
                self.cursor = self.cursor.saturating_sub(1);
                Err(self.error_here("expected `class.attr`"))
            }
        }
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect(&Token::LParen, "`(`")?;
        match self.bump() {
            Some(Token::Ident(kw)) if kw.eq_ignore_ascii_case("select") => {}
            _ => {
                self.cursor = self.cursor.saturating_sub(1);
                return Err(self.error_here("expected `SELECT`"));
            }
        }
        let mut q = Query::new();
        // 1. projections, optionally with `=value` bindings
        q.projections = self.group(|p| {
            let (c, a) = p.path()?;
            let attr = p.resolve_attr(&c, &a)?;
            if p.peek() == Some(&Token::Op(CompOp::Eq)) {
                p.bump();
                let ty = p.catalog.attr_type(attr)?;
                let v = p.value(ty)?;
                Ok(Projection::bound(attr, v))
            } else {
                Ok(Projection::plain(attr))
            }
        })?;
        // 2. join predicates
        q.join_predicates = self.group(|p| {
            let (lc, la) = p.path()?;
            let left = p.resolve_attr(&lc, &la)?;
            let op = match p.bump() {
                Some(Token::Op(op)) => op,
                _ => {
                    p.cursor = p.cursor.saturating_sub(1);
                    return Err(p.error_here("expected comparison operator"));
                }
            };
            let (rc, ra) = p.path()?;
            let right = p.resolve_attr(&rc, &ra)?;
            Ok(JoinPredicate::new(left, op, right))
        })?;
        // 3. selective predicates
        q.selective_predicates = self.group(|p| {
            let (c, a) = p.path()?;
            let attr = p.resolve_attr(&c, &a)?;
            let op = match p.bump() {
                Some(Token::Op(op)) => op,
                _ => {
                    p.cursor = p.cursor.saturating_sub(1);
                    return Err(p.error_here("expected comparison operator"));
                }
            };
            let ty = p.catalog.attr_type(attr)?;
            let v = p.value(ty)?;
            Ok(SelPredicate::new(attr, op, v))
        })?;
        // 4. relationships
        q.relationships = self.group(|p| match p.bump() {
            Some(Token::Ident(name)) => Ok(p.catalog.rel_id(&name)?),
            _ => {
                p.cursor = p.cursor.saturating_sub(1);
                Err(p.error_here("expected relationship name"))
            }
        })?;
        // 5. classes
        q.classes = self.group(|p| match p.bump() {
            Some(Token::Ident(name)) => Ok(p.catalog.class_id(&name)?),
            _ => {
                p.cursor = p.cursor.saturating_sub(1);
                Err(p.error_here("expected class name"))
            }
        })?;
        self.expect(&Token::RParen, "`)`")?;
        if self.cursor != self.tokens.len() {
            return Err(self.error_here("trailing input after query"));
        }
        Ok(q)
    }
}

/// Parses a query in the paper's format and validates it against `catalog`.
pub fn parse_query(src: &str, catalog: &Catalog) -> Result<Query, QueryError> {
    let mut p = Parser::new(src, catalog)?;
    let q = p.query()?;
    q.validate(catalog)?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::QueryExt;
    use sqo_catalog::example::figure21;

    const FIG23: &str = r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
        {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
        {collects, supplies} {supplier, cargo, vehicle})"#;

    #[test]
    fn parses_figure23_query() {
        let cat = figure21().unwrap();
        let q = parse_query(FIG23, &cat).unwrap();
        assert_eq!(q.projections.len(), 3);
        assert_eq!(q.selective_predicates.len(), 2);
        assert_eq!(q.relationships.len(), 2);
        assert_eq!(q.classes.len(), 3);
    }

    #[test]
    fn round_trips_through_display() {
        let cat = figure21().unwrap();
        let q = parse_query(FIG23, &cat).unwrap();
        let printed = q.display(&cat).to_string();
        let q2 = parse_query(&printed, &cat).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parses_bound_projection() {
        let cat = figure21().unwrap();
        let src = r#"(SELECT {vehicle.vehicle_no, cargo.desc="frozen food", cargo.quantity}
            {} {vehicle.desc = "refrigerated truck", cargo.desc = "frozen food"}
            {collects} {cargo, vehicle})"#;
        let q = parse_query(src, &cat).unwrap();
        assert_eq!(q.projections[1].binding, Some(Value::str("frozen food")));
    }

    #[test]
    fn parses_join_predicates_and_operators() {
        let cat = figure21().unwrap();
        let src = r#"(SELECT {driver.name} {driver.license_class >= vehicle.class}
            {driver.license_class != 0, vehicle.class <= 5} {drives} {driver, vehicle})"#;
        let q = parse_query(src, &cat).unwrap();
        assert_eq!(q.join_predicates.len(), 1);
        assert_eq!(q.selective_predicates.len(), 2);
    }

    #[test]
    fn rejects_unknown_names() {
        let cat = figure21().unwrap();
        let src = r#"(SELECT {spaceship.name} {} {} {} {spaceship})"#;
        assert!(parse_query(src, &cat).is_err());
    }

    #[test]
    fn rejects_syntax_garbage() {
        let cat = figure21().unwrap();
        for src in [
            "(SELECT {cargo.desc} {} {} {} {cargo}",   // missing rparen
            "(SELECT {cargo.desc} {} {} {cargo})",     // missing a group
            "(PROJECT {cargo.desc} {} {} {} {cargo})", // wrong keyword
            "(SELECT {cargo.desc,} {} {} {} {cargo})", // dangling comma
            r#"(SELECT {cargo.desc} {} {cargo.desc = "x} {} {cargo})"#, // open string
        ] {
            assert!(parse_query(src, &cat).is_err(), "should reject: {src}");
        }
    }

    #[test]
    fn float_coercion_for_int_literals() {
        // Build a tiny catalog with a float attribute.
        let mut b = Catalog::builder();
        b.class("m", vec![sqo_catalog::AttributeDef::new("w", DataType::Float)]).unwrap();
        let cat = b.build().unwrap();
        let q = parse_query("(SELECT {m.w} {} {m.w > 3} {} {m})", &cat).unwrap();
        assert_eq!(q.selective_predicates[0].value.data_type(), DataType::Float);
    }

    #[test]
    fn error_positions_point_into_source() {
        let cat = figure21().unwrap();
        let src = "(SELECT {cargo.desc} {} {} {} {cargo} ???)";
        match parse_query(src, &cat) {
            Err(QueryError::Syntax { position, .. }) => assert!(position > 0),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }
}
