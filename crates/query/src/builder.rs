//! Name-based fluent construction of queries.
//!
//! ```
//! use sqo_catalog::example::figure21;
//! use sqo_query::{CompOp, QueryBuilder};
//!
//! let catalog = figure21().unwrap();
//! let query = QueryBuilder::new(&catalog)
//!     .select("vehicle.vehicle_no")
//!     .select("cargo.desc")
//!     .select("cargo.quantity")
//!     .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
//!     .filter("supplier.name", CompOp::Eq, "SFI")
//!     .via("collects")
//!     .via("supplies")
//!     .build()
//!     .unwrap();
//! assert_eq!(query.classes.len(), 3);
//! ```
//!
//! Classes are inferred from attribute references and relationship
//! endpoints; they can also be added explicitly with [`QueryBuilder::access`]
//! (useful for classes touched only through a relationship).

use sqo_catalog::{Catalog, Value};

use crate::ast::{Projection, Query};
use crate::error::QueryError;
use crate::predicate::{CompOp, JoinPredicate, SelPredicate};

/// Fluent builder; errors are deferred to [`QueryBuilder::build`] so chains
/// stay tidy.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    query: Query,
    errors: Vec<QueryError>,
}

impl<'a> QueryBuilder<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog, query: Query::new(), errors: Vec::new() }
    }

    fn split(path: &str) -> Option<(&str, &str)> {
        let mut parts = path.splitn(2, '.');
        Some((parts.next()?, parts.next()?))
    }

    fn resolve(&mut self, path: &str) -> Option<sqo_catalog::AttrRef> {
        let Some((class, attr)) = Self::split(path) else {
            self.errors.push(QueryError::Syntax {
                position: 0,
                message: format!("expected `class.attr`, got `{path}`"),
            });
            return None;
        };
        match self.catalog.attr_ref(class, attr) {
            Ok(r) => {
                self.ensure_class(r.class);
                Some(r)
            }
            Err(e) => {
                self.errors.push(e.into());
                None
            }
        }
    }

    fn ensure_class(&mut self, class: sqo_catalog::ClassId) {
        if !self.query.classes.contains(&class) {
            self.query.classes.push(class);
        }
    }

    /// Projects `class.attr`.
    pub fn select(mut self, path: &str) -> Self {
        if let Some(r) = self.resolve(path) {
            self.query.projections.push(Projection::plain(r));
        }
        self
    }

    /// Adds a selective predicate `class.attr op value`.
    pub fn filter(mut self, path: &str, op: CompOp, value: impl Into<Value>) -> Self {
        if let Some(r) = self.resolve(path) {
            self.query.selective_predicates.push(SelPredicate::new(r, op, value.into()));
        }
        self
    }

    /// Adds an explicit join predicate `left op right`.
    pub fn join(mut self, left: &str, op: CompOp, right: &str) -> Self {
        let l = self.resolve(left);
        let r = self.resolve(right);
        if let (Some(l), Some(r)) = (l, r) {
            self.query.join_predicates.push(JoinPredicate::new(l, op, r));
        }
        self
    }

    /// Traverses a named relationship, pulling both endpoint classes in.
    pub fn via(mut self, relationship: &str) -> Self {
        match self.catalog.rel_id(relationship) {
            Ok(rel) => {
                let def = self.catalog.relationship(rel).expect("id just resolved");
                let (a, b) = def.classes();
                self.ensure_class(a);
                self.ensure_class(b);
                if !self.query.relationships.contains(&rel) {
                    self.query.relationships.push(rel);
                }
            }
            Err(e) => self.errors.push(e.into()),
        }
        self
    }

    /// Explicitly accesses a class without any predicate or projection.
    pub fn access(mut self, class: &str) -> Self {
        match self.catalog.class_id(class) {
            Ok(c) => self.ensure_class(c),
            Err(e) => self.errors.push(e.into()),
        }
        self
    }

    /// Finishes and validates. The first accumulated error wins.
    pub fn build(self) -> Result<Query, QueryError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        self.query.validate(self.catalog)?;
        Ok(self.query)
    }

    /// Finishes without validation (for tests that need invalid queries).
    pub fn build_unchecked(self) -> Query {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;

    #[test]
    fn builds_figure23_query() {
        let cat = figure21().unwrap();
        let q = QueryBuilder::new(&cat)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        assert_eq!(q.projections.len(), 3);
        assert_eq!(q.selective_predicates.len(), 2);
        assert_eq!(q.relationships.len(), 2);
        assert_eq!(q.classes.len(), 3);
    }

    #[test]
    fn join_predicates_supported() {
        let cat = figure21().unwrap();
        let q = QueryBuilder::new(&cat)
            .select("driver.name")
            .join("driver.license_class", CompOp::Ge, "vehicle.class")
            .via("drives")
            .build()
            .unwrap();
        assert_eq!(q.join_predicates.len(), 1);
    }

    #[test]
    fn unknown_attribute_surfaces_at_build() {
        let cat = figure21().unwrap();
        let err = QueryBuilder::new(&cat).select("vehicle.wheels").build();
        assert!(err.is_err());
    }

    #[test]
    fn malformed_path_surfaces_at_build() {
        let cat = figure21().unwrap();
        let err = QueryBuilder::new(&cat).select("no_dot_here").build();
        assert!(matches!(err, Err(QueryError::Syntax { .. })));
    }

    #[test]
    fn duplicate_via_is_idempotent() {
        let cat = figure21().unwrap();
        let q = QueryBuilder::new(&cat)
            .select("cargo.desc")
            .via("supplies")
            .via("supplies")
            .build()
            .unwrap();
        assert_eq!(q.relationships.len(), 1);
    }

    #[test]
    fn access_adds_isolated_class() {
        let cat = figure21().unwrap();
        let q = QueryBuilder::new(&cat).access("cargo").build().unwrap();
        assert_eq!(q.classes.len(), 1);
        assert!(q.projections.is_empty());
    }
}
