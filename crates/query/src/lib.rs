//! # sqo-query
//!
//! Query model for the `sqo` workspace: predicates with a sound implication
//! fragment, the paper's five-part query AST, a query graph for class
//! elimination, plus a builder, a parser and a pretty printer for the
//! paper's textual `(SELECT …)` syntax.
//!
//! Predicates are kept in canonical form so that structural equality is
//! logical equality over the supported fragment — the property the
//! transformation table of `sqo-core` relies on when it deduplicates the
//! predicate set `P`.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod ast;
mod builder;
mod canonical;
mod display;
mod error;
mod graph;
pub mod interval;
mod parser;
mod predicate;

pub use ast::{Projection, Query};
pub use builder::QueryBuilder;
pub use canonical::QueryFingerprint;
pub use display::{QueryDisplay, QueryExt};
pub use error::QueryError;
pub use graph::QueryGraph;
pub use interval::{Bound, ValueSet};
pub use parser::parse_query;
pub use predicate::{CompOp, JoinPredicate, Predicate, PredicateDisplay, SelPredicate};
