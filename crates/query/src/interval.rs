//! Interval algebra over attribute values.
//!
//! Each selective predicate `attr op const` denotes a set of domain values.
//! This module gives those sets a small normal form — an interval with
//! optional endpoints, or the complement of a point — together with subset
//! and intersection tests. The optimizer uses subset tests for
//! *implication-aware antecedent matching* (DESIGN.md §3.2): a query
//! predicate `B > 15` satisfies a constraint antecedent `B > 10` because
//! `(15, ∞) ⊆ (10, ∞)`.
//!
//! Integer intervals are normalized to closed bounds using
//! [`Value::successor`]/[`Value::predecessor`], so `x > 3` and `x >= 4`
//! compare equal.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};
use sqo_catalog::Value;

/// One endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    Unbounded,
    Included(Value),
    Excluded(Value),
}

impl Bound {
    fn value(&self) -> Option<&Value> {
        match self {
            Bound::Unbounded => None,
            Bound::Included(v) | Bound::Excluded(v) => Some(v),
        }
    }
}

/// The set of values denoted by a predicate over one attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueSet {
    /// A contiguous range `lo..hi` (either side may be open or unbounded).
    Range { lo: Bound, hi: Bound },
    /// Everything except one point (`attr != v`).
    Hole(Value),
}

impl ValueSet {
    pub fn point(v: Value) -> Self {
        ValueSet::Range { lo: Bound::Included(v.clone()), hi: Bound::Included(v) }
    }

    pub fn everything() -> Self {
        ValueSet::Range { lo: Bound::Unbounded, hi: Bound::Unbounded }
    }

    pub fn less_than(v: Value) -> Self {
        ValueSet::Range { lo: Bound::Unbounded, hi: Bound::Excluded(v) }.normalize()
    }

    pub fn at_most(v: Value) -> Self {
        ValueSet::Range { lo: Bound::Unbounded, hi: Bound::Included(v) }
    }

    pub fn greater_than(v: Value) -> Self {
        ValueSet::Range { lo: Bound::Excluded(v), hi: Bound::Unbounded }.normalize()
    }

    pub fn at_least(v: Value) -> Self {
        ValueSet::Range { lo: Bound::Included(v), hi: Bound::Unbounded }
    }

    pub fn hole(v: Value) -> Self {
        ValueSet::Hole(v)
    }

    /// Canonicalizes discrete open bounds to closed ones (`> 3` → `>= 4`).
    pub fn normalize(self) -> Self {
        match self {
            ValueSet::Range { lo, hi } => {
                let lo = match lo {
                    Bound::Excluded(v) => match v.successor() {
                        Some(s) => Bound::Included(s),
                        None => Bound::Excluded(v),
                    },
                    other => other,
                };
                let hi = match hi {
                    Bound::Excluded(v) => match v.predecessor() {
                        Some(p) => Bound::Included(p),
                        None => Bound::Excluded(v),
                    },
                    other => other,
                };
                ValueSet::Range { lo, hi }
            }
            hole => hole,
        }
    }

    /// Membership test. Values of a foreign type are never members.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            ValueSet::Hole(h) => matches!(v.compare(h), Some(o) if o != Ordering::Equal),
            ValueSet::Range { lo, hi } => {
                let above_lo = match lo {
                    Bound::Unbounded => true,
                    Bound::Included(b) => {
                        matches!(v.compare(b), Some(Ordering::Greater) | Some(Ordering::Equal))
                    }
                    Bound::Excluded(b) => matches!(v.compare(b), Some(Ordering::Greater)),
                };
                let below_hi = match hi {
                    Bound::Unbounded => true,
                    Bound::Included(b) => {
                        matches!(v.compare(b), Some(Ordering::Less) | Some(Ordering::Equal))
                    }
                    Bound::Excluded(b) => matches!(v.compare(b), Some(Ordering::Less)),
                };
                above_lo && below_hi
            }
        }
    }

    /// Whether the range is provably empty (e.g. `[5, 3]`).
    pub fn is_empty(&self) -> bool {
        match self {
            ValueSet::Hole(_) => false,
            ValueSet::Range { lo, hi } => match (lo.value(), hi.value()) {
                (Some(a), Some(b)) => match a.compare(b) {
                    Some(Ordering::Greater) => true,
                    Some(Ordering::Equal) => {
                        matches!(lo, Bound::Excluded(_)) || matches!(hi, Bound::Excluded(_))
                    }
                    _ => false,
                },
                _ => false,
            },
        }
    }

    /// Subset test: does every member of `self` belong to `other`?
    ///
    /// Sound but intentionally incomplete where the domain is unknown:
    /// `Hole(v) ⊆ Range` only holds for the unbounded range, because without
    /// domain bounds the hole's extension is unbounded on both sides.
    pub fn subset_of(&self, other: &ValueSet) -> bool {
        if self.is_empty() {
            return true;
        }
        match (self, other) {
            (ValueSet::Hole(a), ValueSet::Hole(b)) => {
                matches!(a.compare(b), Some(Ordering::Equal))
            }
            (ValueSet::Hole(_), ValueSet::Range { lo, hi }) => {
                matches!(lo, Bound::Unbounded) && matches!(hi, Bound::Unbounded)
            }
            (ValueSet::Range { lo, hi }, ValueSet::Hole(h)) => {
                // The range must exclude the hole's point.
                !ValueSet::Range { lo: lo.clone(), hi: hi.clone() }.contains(h)
            }
            (ValueSet::Range { lo: alo, hi: ahi }, ValueSet::Range { lo: blo, hi: bhi }) => {
                lo_geq(alo, blo) && hi_leq(ahi, bhi)
            }
        }
    }

    /// Intersection with another set over the same attribute; `None` when the
    /// result is not representable in this normal form (range ∩ hole with the
    /// hole strictly inside the range would need two ranges).
    pub fn intersect(&self, other: &ValueSet) -> Option<ValueSet> {
        match (self, other) {
            (ValueSet::Hole(a), ValueSet::Hole(b)) => {
                if matches!(a.compare(b), Some(Ordering::Equal)) {
                    Some(ValueSet::Hole(a.clone()))
                } else {
                    None // two distinct holes: representable only with 3 ranges
                }
            }
            (ValueSet::Range { lo, hi }, ValueSet::Hole(h))
            | (ValueSet::Hole(h), ValueSet::Range { lo, hi }) => {
                let range = ValueSet::Range { lo: lo.clone(), hi: hi.clone() };
                if !range.contains(h) {
                    Some(range)
                } else {
                    // Shrinkable when the hole sits on a closed endpoint.
                    match (&lo, &hi) {
                        (Bound::Included(l), _)
                            if matches!(l.compare(h), Some(Ordering::Equal)) =>
                        {
                            Some(
                                ValueSet::Range { lo: Bound::Excluded(h.clone()), hi: hi.clone() }
                                    .normalize(),
                            )
                        }
                        (_, Bound::Included(u))
                            if matches!(u.compare(h), Some(Ordering::Equal)) =>
                        {
                            Some(
                                ValueSet::Range { lo: lo.clone(), hi: Bound::Excluded(h.clone()) }
                                    .normalize(),
                            )
                        }
                        _ => None,
                    }
                }
            }
            (ValueSet::Range { lo: alo, hi: ahi }, ValueSet::Range { lo: blo, hi: bhi }) => {
                let lo = if lo_geq(alo, blo) { alo.clone() } else { blo.clone() };
                let hi = if hi_leq(ahi, bhi) { ahi.clone() } else { bhi.clone() };
                Some(ValueSet::Range { lo, hi })
            }
        }
    }

    /// Whether `self ∩ other = ∅` is provable.
    pub fn disjoint_from(&self, other: &ValueSet) -> bool {
        match self.intersect(other) {
            Some(s) => s.is_empty(),
            None => false, // unrepresentable intersections are never empty here
        }
    }
}

/// `a` is at least as tight a lower bound as `b`.
fn lo_geq(a: &Bound, b: &Bound) -> bool {
    match (a, b) {
        (_, Bound::Unbounded) => true,
        (Bound::Unbounded, _) => false,
        (Bound::Included(x), Bound::Included(y)) | (Bound::Excluded(x), Bound::Excluded(y)) => {
            matches!(x.compare(y), Some(Ordering::Greater) | Some(Ordering::Equal))
        }
        (Bound::Included(x), Bound::Excluded(y)) => {
            matches!(x.compare(y), Some(Ordering::Greater))
        }
        (Bound::Excluded(x), Bound::Included(y)) => {
            matches!(x.compare(y), Some(Ordering::Greater) | Some(Ordering::Equal))
        }
    }
}

/// `a` is at least as tight an upper bound as `b`.
fn hi_leq(a: &Bound, b: &Bound) -> bool {
    match (a, b) {
        (_, Bound::Unbounded) => true,
        (Bound::Unbounded, _) => false,
        (Bound::Included(x), Bound::Included(y)) | (Bound::Excluded(x), Bound::Excluded(y)) => {
            matches!(x.compare(y), Some(Ordering::Less) | Some(Ordering::Equal))
        }
        (Bound::Included(x), Bound::Excluded(y)) => matches!(x.compare(y), Some(Ordering::Less)),
        (Bound::Excluded(x), Bound::Included(y)) => {
            matches!(x.compare(y), Some(Ordering::Less) | Some(Ordering::Equal))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn normalize_discrete_bounds() {
        assert_eq!(
            ValueSet::greater_than(i(3)),
            ValueSet::Range { lo: Bound::Included(i(4)), hi: Bound::Unbounded }
        );
        assert_eq!(
            ValueSet::less_than(i(3)),
            ValueSet::Range { lo: Bound::Unbounded, hi: Bound::Included(i(2)) }
        );
        // Strings stay open.
        assert_eq!(
            ValueSet::greater_than(Value::str("m")),
            ValueSet::Range { lo: Bound::Excluded(Value::str("m")), hi: Bound::Unbounded }
        );
    }

    #[test]
    fn contains_basics() {
        let s = ValueSet::at_least(i(10));
        assert!(s.contains(&i(10)));
        assert!(s.contains(&i(11)));
        assert!(!s.contains(&i(9)));
        let h = ValueSet::hole(i(5));
        assert!(h.contains(&i(4)));
        assert!(!h.contains(&i(5)));
        // Foreign types are not members.
        assert!(!s.contains(&Value::str("10")));
    }

    #[test]
    fn emptiness() {
        let e = ValueSet::Range { lo: Bound::Included(i(5)), hi: Bound::Included(i(3)) };
        assert!(e.is_empty());
        let p = ValueSet::point(i(3));
        assert!(!p.is_empty());
        let half_open = ValueSet::Range { lo: Bound::Included(i(3)), hi: Bound::Excluded(i(3)) };
        assert!(half_open.is_empty());
    }

    #[test]
    fn subset_ranges() {
        // (15, inf) ⊆ (10, inf): the motivating example.
        assert!(ValueSet::greater_than(i(15)).subset_of(&ValueSet::greater_than(i(10))));
        assert!(!ValueSet::greater_than(i(10)).subset_of(&ValueSet::greater_than(i(15))));
        // Point in range.
        assert!(ValueSet::point(i(7)).subset_of(&ValueSet::at_most(i(7))));
        assert!(!ValueSet::point(i(8)).subset_of(&ValueSet::at_most(i(7))));
        // x > 3 ⊆ x >= 4 for ints (equality after normalization).
        assert!(ValueSet::greater_than(i(3)).subset_of(&ValueSet::at_least(i(4))));
        assert!(ValueSet::at_least(i(4)).subset_of(&ValueSet::greater_than(i(3))));
    }

    #[test]
    fn subset_holes() {
        assert!(ValueSet::hole(i(5)).subset_of(&ValueSet::hole(i(5))));
        assert!(!ValueSet::hole(i(5)).subset_of(&ValueSet::hole(i(6))));
        // point(4) ⊆ hole(5)
        assert!(ValueSet::point(i(4)).subset_of(&ValueSet::hole(i(5))));
        assert!(!ValueSet::point(i(5)).subset_of(&ValueSet::hole(i(5))));
        // range that excludes the hole point
        assert!(ValueSet::at_most(i(4)).subset_of(&ValueSet::hole(i(5))));
        assert!(!ValueSet::at_most(i(5)).subset_of(&ValueSet::hole(i(5))));
        // hole ⊆ full range only
        assert!(ValueSet::hole(i(5)).subset_of(&ValueSet::everything()));
        assert!(!ValueSet::hole(i(5)).subset_of(&ValueSet::at_least(i(0))));
    }

    #[test]
    fn empty_is_subset_of_all() {
        let e = ValueSet::Range { lo: Bound::Included(i(5)), hi: Bound::Included(i(3)) };
        assert!(e.subset_of(&ValueSet::point(i(42))));
        assert!(e.subset_of(&ValueSet::hole(i(42))));
    }

    #[test]
    fn intersect_ranges() {
        let a = ValueSet::at_least(i(5));
        let b = ValueSet::at_most(i(10));
        let got = a.intersect(&b).unwrap();
        assert!(got.contains(&i(5)) && got.contains(&i(10)) && !got.contains(&i(11)));
        let c = ValueSet::at_least(i(11));
        assert!(b.disjoint_from(&c));
        assert!(!a.disjoint_from(&b));
    }

    #[test]
    fn intersect_range_with_hole() {
        let r = ValueSet::at_least(i(5));
        // Hole outside the range: range unchanged.
        assert_eq!(r.intersect(&ValueSet::hole(i(0))), Some(r.clone()));
        // Hole on the closed endpoint: endpoint opens up (then normalizes).
        let shrunk = r.intersect(&ValueSet::hole(i(5))).unwrap();
        assert!(!shrunk.contains(&i(5)) && shrunk.contains(&i(6)));
        // Hole strictly inside: unrepresentable.
        assert_eq!(r.intersect(&ValueSet::hole(i(7))), None);
    }

    #[test]
    fn point_disjoint_from_other_point() {
        assert!(ValueSet::point(i(1)).disjoint_from(&ValueSet::point(i(2))));
        assert!(!ValueSet::point(i(1)).disjoint_from(&ValueSet::point(i(1))));
        assert!(ValueSet::point(Value::str("frozen food"))
            .disjoint_from(&ValueSet::point(Value::str("fresh food"))));
    }
}
