//! Query construction and validation errors.

use std::fmt;

use sqo_catalog::{CatalogError, ClassId, RelId};

/// Errors raised by query validation, building or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    Catalog(CatalogError),
    /// A predicate or projection references a class absent from the class list.
    ClassNotInQuery(ClassId),
    /// A relationship's endpoint class is absent from the class list.
    RelationshipEndpointMissing {
        rel: RelId,
        class: ClassId,
    },
    DuplicateClass(ClassId),
    DuplicateRelationship(RelId),
    /// The comparison constant's type differs from the attribute's type.
    TypeMismatch {
        context: String,
    },
    /// The query graph is not connected (the paper's path queries always are).
    Disconnected,
    EmptyClassList,
    /// Parser-level syntax error with a human-oriented message.
    Syntax {
        position: usize,
        message: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Catalog(e) => write!(f, "catalog error: {e}"),
            QueryError::ClassNotInQuery(c) => {
                write!(f, "predicate references {c} which is not in the class list")
            }
            QueryError::RelationshipEndpointMissing { rel, class } => {
                write!(f, "{rel} endpoint {class} is not in the class list")
            }
            QueryError::DuplicateClass(c) => write!(f, "duplicate {c} in class list"),
            QueryError::DuplicateRelationship(r) => {
                write!(f, "duplicate {r} in relationship list")
            }
            QueryError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            QueryError::Disconnected => write!(f, "query graph is not connected"),
            QueryError::EmptyClassList => write!(f, "query must access at least one class"),
            QueryError::Syntax { position, message } => {
                write!(f, "syntax error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for QueryError {
    fn from(e: CatalogError) -> Self {
        QueryError::Catalog(e)
    }
}
