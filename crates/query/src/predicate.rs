//! Predicates: the atoms the whole optimizer manipulates.
//!
//! Two shapes, matching the paper's query format:
//! * **selective** predicates `class.attr op constant`;
//! * **join** predicates `classA.attr op classB.attr`.
//!
//! Both are kept in a canonical form so that structural equality coincides
//! with logical equality for the fragment the paper uses: selective
//! predicates normalize their [`ValueSet`] (`x > 3` ≡ `x >= 4` over ints) and
//! join predicates order their operands.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};
use sqo_catalog::{AttrRef, Catalog, ClassId, Value};

use crate::interval::ValueSet;

/// Comparison operators of the paper's Horn-clause fragment
/// (`equal`, `greaterThanOrEqualTo`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompOp {
    /// All operators, for generators and exhaustive tests.
    pub const ALL: [CompOp; 6] =
        [CompOp::Eq, CompOp::Ne, CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge];

    /// Truth of `a op b` given `a.cmp(b)`.
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CompOp::Eq => ord == Ordering::Equal,
            CompOp::Ne => ord != Ordering::Equal,
            CompOp::Lt => ord == Ordering::Less,
            CompOp::Le => ord != Ordering::Greater,
            CompOp::Gt => ord == Ordering::Greater,
            CompOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator `op'` with `a op b ⇔ b op' a`.
    pub fn flip(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Ne => CompOp::Ne,
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ge => CompOp::Le,
        }
    }

    /// Logical negation.
    pub fn negate(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Ne,
            CompOp::Ne => CompOp::Eq,
            CompOp::Lt => CompOp::Ge,
            CompOp::Le => CompOp::Gt,
            CompOp::Gt => CompOp::Le,
            CompOp::Ge => CompOp::Lt,
        }
    }

    /// `self` implies `other` for the *same* operand pair: for every ordering
    /// `o`, `self.eval(o) → other.eval(o)`.
    pub fn implies(self, other: CompOp) -> bool {
        [Ordering::Less, Ordering::Equal, Ordering::Greater]
            .into_iter()
            .all(|o| !self.eval(o) || other.eval(o))
    }

    /// Whether an equality-only (hash) index can serve this operator.
    pub fn is_equality(self) -> bool {
        matches!(self, CompOp::Eq)
    }

    /// Whether the operator constrains a contiguous range (servable by a
    /// B-tree index).
    pub fn is_range(self) -> bool {
        !matches!(self, CompOp::Ne)
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A selective predicate `class.attr op constant`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelPredicate {
    pub attr: AttrRef,
    pub op: CompOp,
    pub value: Value,
}

impl SelPredicate {
    pub fn new(attr: AttrRef, op: CompOp, value: Value) -> Self {
        Self { attr, op, value }
    }

    /// The set of attribute values satisfying the predicate.
    pub fn value_set(&self) -> ValueSet {
        match self.op {
            CompOp::Eq => ValueSet::point(self.value.clone()),
            CompOp::Ne => ValueSet::hole(self.value.clone()),
            CompOp::Lt => ValueSet::less_than(self.value.clone()),
            CompOp::Le => ValueSet::at_most(self.value.clone()),
            CompOp::Gt => ValueSet::greater_than(self.value.clone()),
            CompOp::Ge => ValueSet::at_least(self.value.clone()),
        }
    }

    /// Evaluates against a concrete attribute value.
    pub fn eval(&self, v: &Value) -> bool {
        match v.compare(&self.value) {
            Some(ord) => self.op.eval(ord),
            None => false,
        }
    }

    /// Logical implication `self → other`. Only predicates over the same
    /// attribute can imply one another.
    pub fn implies(&self, other: &SelPredicate) -> bool {
        self.attr == other.attr && self.value_set().subset_of(&other.value_set())
    }

    /// Provable unsatisfiability of `self ∧ other` (same attribute only).
    pub fn contradicts(&self, other: &SelPredicate) -> bool {
        self.attr == other.attr && self.value_set().disjoint_from(&other.value_set())
    }

    /// Never satisfiable on its own (empty value set).
    pub fn is_unsatisfiable(&self) -> bool {
        self.value_set().is_empty()
    }
}

/// A join predicate `left.attr op right.attr` between two classes.
///
/// Canonical form: `left <= right` in `(ClassId, AttrId)` order, flipping the
/// operator as needed, so `a.x < b.y` and `b.y > a.x` are structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinPredicate {
    pub left: AttrRef,
    pub op: CompOp,
    pub right: AttrRef,
}

impl JoinPredicate {
    pub fn new(left: AttrRef, op: CompOp, right: AttrRef) -> Self {
        if (right.class, right.attr) < (left.class, left.attr) {
            Self { left: right, op: op.flip(), right: left }
        } else {
            Self { left, op, right }
        }
    }

    pub fn eval(&self, left: &Value, right: &Value) -> bool {
        match left.compare(right) {
            Some(ord) => self.op.eval(ord),
            None => false,
        }
    }

    /// Implication between join predicates over the same attribute pair.
    pub fn implies(&self, other: &JoinPredicate) -> bool {
        self.left == other.left && self.right == other.right && self.op.implies(other.op)
    }

    pub fn involves(&self, class: ClassId) -> bool {
        self.left.class == class || self.right.class == class
    }

    pub fn classes(&self) -> (ClassId, ClassId) {
        (self.left.class, self.right.class)
    }
}

/// Any predicate — the column domain of the paper's transformation table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    Sel(SelPredicate),
    Join(JoinPredicate),
}

impl Predicate {
    pub fn sel(attr: AttrRef, op: CompOp, value: impl Into<Value>) -> Self {
        Predicate::Sel(SelPredicate::new(attr, op, value.into()))
    }

    pub fn join(left: AttrRef, op: CompOp, right: AttrRef) -> Self {
        Predicate::Join(JoinPredicate::new(left, op, right))
    }

    /// The classes the predicate mentions (1 for selective, 1–2 for joins).
    pub fn classes(&self) -> Vec<ClassId> {
        match self {
            Predicate::Sel(p) => vec![p.attr.class],
            Predicate::Join(p) => {
                let (a, b) = p.classes();
                if a == b {
                    vec![a]
                } else {
                    vec![a, b]
                }
            }
        }
    }

    pub fn involves(&self, class: ClassId) -> bool {
        match self {
            Predicate::Sel(p) => p.attr.class == class,
            Predicate::Join(p) => p.involves(class),
        }
    }

    /// Logical implication within the supported fragment.
    pub fn implies(&self, other: &Predicate) -> bool {
        match (self, other) {
            (Predicate::Sel(a), Predicate::Sel(b)) => a.implies(b),
            (Predicate::Join(a), Predicate::Join(b)) => a.implies(b),
            _ => false,
        }
    }

    /// Whether the predicate's attribute(s) carry an index. For joins we ask
    /// about either side — an index on one side suffices for an index-nested-
    /// loop join.
    pub fn is_indexed(&self, catalog: &Catalog) -> bool {
        match self {
            Predicate::Sel(p) => catalog.is_indexed(p.attr),
            Predicate::Join(p) => catalog.is_indexed(p.left) || catalog.is_indexed(p.right),
        }
    }

    pub fn as_sel(&self) -> Option<&SelPredicate> {
        match self {
            Predicate::Sel(p) => Some(p),
            _ => None,
        }
    }

    pub fn as_join(&self) -> Option<&JoinPredicate> {
        match self {
            Predicate::Join(p) => Some(p),
            _ => None,
        }
    }

    /// Renders with catalog names (`cargo.desc = "frozen food"`).
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> PredicateDisplay<'a> {
        PredicateDisplay { pred: self, catalog }
    }
}

impl From<SelPredicate> for Predicate {
    fn from(p: SelPredicate) -> Self {
        Predicate::Sel(p)
    }
}

impl From<JoinPredicate> for Predicate {
    fn from(p: JoinPredicate) -> Self {
        Predicate::Join(p)
    }
}

/// Name-resolved pretty printer for predicates.
#[derive(Debug)]
pub struct PredicateDisplay<'a> {
    pred: &'a Predicate,
    catalog: &'a Catalog,
}

impl fmt::Display for PredicateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pred {
            Predicate::Sel(p) => {
                write!(f, "{} {} {}", self.catalog.qualified_attr_name(p.attr), p.op, p.value)
            }
            Predicate::Join(p) => write!(
                f,
                "{} {} {}",
                self.catalog.qualified_attr_name(p.left),
                p.op,
                self.catalog.qualified_attr_name(p.right)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{AttrId, ClassId};

    fn aref(c: u32, a: u32) -> AttrRef {
        AttrRef::new(ClassId(c), AttrId(a))
    }

    #[test]
    fn op_eval_table() {
        use Ordering::*;
        assert!(CompOp::Eq.eval(Equal) && !CompOp::Eq.eval(Less));
        assert!(CompOp::Ne.eval(Less) && !CompOp::Ne.eval(Equal));
        assert!(CompOp::Le.eval(Less) && CompOp::Le.eval(Equal) && !CompOp::Le.eval(Greater));
        assert!(CompOp::Gt.eval(Greater) && !CompOp::Gt.eval(Equal));
    }

    #[test]
    fn op_flip_round_trips() {
        for op in CompOp::ALL {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(CompOp::Lt.flip(), CompOp::Gt);
        assert_eq!(CompOp::Le.flip(), CompOp::Ge);
    }

    #[test]
    fn op_negate_is_involution_and_complements() {
        use Ordering::*;
        for op in CompOp::ALL {
            assert_eq!(op.negate().negate(), op);
            for o in [Less, Equal, Greater] {
                assert_eq!(op.eval(o), !op.negate().eval(o));
            }
        }
    }

    #[test]
    fn op_implication_lattice() {
        assert!(CompOp::Eq.implies(CompOp::Le));
        assert!(CompOp::Eq.implies(CompOp::Ge));
        assert!(CompOp::Lt.implies(CompOp::Le));
        assert!(CompOp::Lt.implies(CompOp::Ne));
        assert!(CompOp::Gt.implies(CompOp::Ne));
        assert!(!CompOp::Le.implies(CompOp::Lt));
        assert!(!CompOp::Ne.implies(CompOp::Lt));
        for op in CompOp::ALL {
            assert!(op.implies(op));
        }
    }

    #[test]
    fn sel_predicate_eval() {
        let p = SelPredicate::new(aref(0, 1), CompOp::Ge, Value::Int(10));
        assert!(p.eval(&Value::Int(10)));
        assert!(p.eval(&Value::Int(11)));
        assert!(!p.eval(&Value::Int(9)));
        assert!(!p.eval(&Value::str("10"))); // type mismatch is false
    }

    #[test]
    fn sel_implication_across_ops() {
        let gt15 = SelPredicate::new(aref(0, 1), CompOp::Gt, Value::Int(15));
        let gt10 = SelPredicate::new(aref(0, 1), CompOp::Gt, Value::Int(10));
        let ge16 = SelPredicate::new(aref(0, 1), CompOp::Ge, Value::Int(16));
        assert!(gt15.implies(&gt10));
        assert!(!gt10.implies(&gt15));
        assert!(gt15.implies(&ge16) && ge16.implies(&gt15));
        // Different attribute: never.
        let other = SelPredicate::new(aref(0, 2), CompOp::Gt, Value::Int(10));
        assert!(!gt15.implies(&other));
        // eq implies ne of a different point.
        let eq_a = SelPredicate::new(aref(0, 1), CompOp::Eq, Value::Int(1));
        let ne_b = SelPredicate::new(aref(0, 1), CompOp::Ne, Value::Int(2));
        assert!(eq_a.implies(&ne_b));
    }

    #[test]
    fn sel_contradiction() {
        let eq_a = SelPredicate::new(aref(0, 1), CompOp::Eq, Value::str("SFI"));
        let eq_b = SelPredicate::new(aref(0, 1), CompOp::Eq, Value::str("NTUC"));
        assert!(eq_a.contradicts(&eq_b));
        assert!(!eq_a.contradicts(&eq_a));
        let lt = SelPredicate::new(aref(0, 1), CompOp::Lt, Value::Int(5));
        let gt = SelPredicate::new(aref(0, 1), CompOp::Gt, Value::Int(5));
        assert!(lt.contradicts(&gt));
    }

    #[test]
    fn join_predicate_canonical_form() {
        let a = JoinPredicate::new(aref(2, 0), CompOp::Lt, aref(1, 3));
        let b = JoinPredicate::new(aref(1, 3), CompOp::Gt, aref(2, 0));
        assert_eq!(a, b);
        assert_eq!(a.left, aref(1, 3));
        assert_eq!(a.op, CompOp::Gt);
    }

    #[test]
    fn join_predicate_eval_and_implication() {
        // driver.license_class >= vehicle.class (constraint c3's consequent)
        let ge = JoinPredicate::new(aref(0, 0), CompOp::Ge, aref(1, 1));
        assert!(ge.eval(&Value::Int(3), &Value::Int(2)));
        assert!(!ge.eval(&Value::Int(1), &Value::Int(2)));
        let gt = JoinPredicate::new(aref(0, 0), CompOp::Gt, aref(1, 1));
        assert!(gt.implies(&ge));
        assert!(!ge.implies(&gt));
    }

    #[test]
    fn predicate_classes() {
        let s = Predicate::sel(aref(4, 0), CompOp::Eq, 3i64);
        assert_eq!(s.classes(), vec![ClassId(4)]);
        let j = Predicate::join(aref(1, 0), CompOp::Eq, aref(2, 0));
        assert_eq!(j.classes(), vec![ClassId(1), ClassId(2)]);
        assert!(j.involves(ClassId(2)) && !j.involves(ClassId(3)));
        let self_join = Predicate::join(aref(1, 0), CompOp::Lt, aref(1, 1));
        assert_eq!(self_join.classes(), vec![ClassId(1)]);
    }

    #[test]
    fn structural_equality_of_normalized_sets() {
        // x > 3 and x >= 4 have equal value sets, though different literals.
        let gt3 = SelPredicate::new(aref(0, 0), CompOp::Gt, Value::Int(3));
        let ge4 = SelPredicate::new(aref(0, 0), CompOp::Ge, Value::Int(4));
        assert_eq!(gt3.value_set().normalize(), ge4.value_set().normalize());
        assert!(gt3.implies(&ge4) && ge4.implies(&gt3));
    }
}
