//! Canonical query form and stable fingerprints — the cache key of the
//! serving layer (`sqo-service`).
//!
//! Two textually different queries that denote the same five-part query —
//! same predicates in a different order, same class list shuffled — must map
//! to the same cache entry, otherwise repeated traffic defeats the plan
//! cache. [`Query::canonical`] reuses the deterministic ordering of
//! [`Query::normalized`] (sort + dedup every list part), and
//! [`Query::fingerprint`] hashes that canonical form with FNV-1a, a fixed
//! algorithm whose output is stable across processes, runs and platforms —
//! unlike `DefaultHasher`, which only promises per-process determinism.

use std::fmt;

use sqo_catalog::{AttrRef, Value};

use crate::ast::{Projection, Query};
use crate::predicate::{CompOp, JoinPredicate, SelPredicate};

/// A stable 64-bit digest of a query's canonical form.
///
/// Equal fingerprints are intended to mean equal canonical queries; the
/// serving layer additionally pairs the fingerprint with a constraint-store
/// epoch so that cached rewrites invalidate when the semantic world changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryFingerprint(pub u64);

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a, 64-bit: tiny, allocation-free, and — critically for a cache key
/// that may outlive one process — fully specified.
#[derive(Debug)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_attr(&mut self, attr: AttrRef) {
        self.write_u32(attr.class.0);
        self.write_u32(attr.attr.0);
    }

    fn write_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.write_u8(0);
                self.write(&i.to_le_bytes());
            }
            Value::Float(f) => {
                self.write_u8(1);
                self.write_u64(f.get().to_bits());
            }
            Value::Str(s) => {
                self.write_u8(2);
                self.write_usize(s.len());
                self.write(s.as_bytes());
            }
            Value::Bool(b) => {
                self.write_u8(3);
                self.write_u8(u8::from(*b));
            }
        }
    }

    fn write_op(&mut self, op: CompOp) {
        self.write_u8(match op {
            CompOp::Eq => 0,
            CompOp::Ne => 1,
            CompOp::Lt => 2,
            CompOp::Le => 3,
            CompOp::Gt => 4,
            CompOp::Ge => 5,
        });
    }

    fn write_projection(&mut self, p: &Projection) {
        self.write_attr(p.attr);
        match &p.binding {
            None => self.write_u8(0),
            Some(v) => {
                self.write_u8(1);
                self.write_value(v);
            }
        }
    }

    fn write_sel(&mut self, p: &SelPredicate) {
        self.write_attr(p.attr);
        self.write_op(p.op);
        self.write_value(&p.value);
    }

    fn write_join(&mut self, p: &JoinPredicate) {
        self.write_attr(p.left);
        self.write_op(p.op);
        self.write_attr(p.right);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl Query {
    /// The canonical representative of this query's equivalence class under
    /// list reordering and duplication: every part sorted deterministically
    /// and deduplicated. Canonicalization is idempotent and does not change
    /// the query's meaning (conjunctions and projection sets are
    /// order-insensitive).
    pub fn canonical(&self) -> Query {
        self.clone().normalized()
    }

    /// Whether the query already is its own canonical form.
    pub fn is_canonical(&self) -> bool {
        *self == self.canonical()
    }

    /// Stable fingerprint of the canonical form (see [`QueryFingerprint`]).
    ///
    /// Queries differing only in list order or duplicated entries share a
    /// fingerprint; queries with different predicates, projections, classes
    /// or relationships get different fingerprints (modulo 64-bit hash
    /// collisions, which the cache tolerates by storing the canonical query
    /// alongside the entry).
    pub fn fingerprint(&self) -> QueryFingerprint {
        self.canonical().fingerprint_canonical()
    }

    /// [`Query::fingerprint`] for a query that **is already canonical** —
    /// skips the clone + re-sort. Callers holding the result of
    /// [`Query::canonical`] (the serving layer's cache key path) use this to
    /// canonicalize exactly once per request.
    pub fn fingerprint_canonical(&self) -> QueryFingerprint {
        debug_assert!(self.is_canonical(), "fingerprint_canonical needs a canonical query");
        let q = self;
        let mut h = Fnv1a::new();
        // Length-prefix every section so section boundaries cannot alias.
        h.write_usize(q.projections.len());
        for p in &q.projections {
            h.write_projection(p);
        }
        h.write_usize(q.join_predicates.len());
        for p in &q.join_predicates {
            h.write_join(p);
        }
        h.write_usize(q.selective_predicates.len());
        for p in &q.selective_predicates {
            h.write_sel(p);
        }
        h.write_usize(q.relationships.len());
        for r in &q.relationships {
            h.write_u32(r.0);
        }
        h.write_usize(q.classes.len());
        for c in &q.classes {
            h.write_u32(c.0);
        }
        QueryFingerprint(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use sqo_catalog::example::figure21;

    fn sample() -> (sqo_catalog::Catalog, Query) {
        let catalog = figure21().unwrap();
        let q = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        (catalog, q)
    }

    #[test]
    fn canonical_is_idempotent() {
        let (_, q) = sample();
        let c = q.canonical();
        assert_eq!(c, c.canonical());
        assert!(c.is_canonical());
    }

    #[test]
    fn fingerprint_ignores_list_order() {
        let (_, q) = sample();
        let mut shuffled = q.clone();
        shuffled.projections.reverse();
        shuffled.selective_predicates.reverse();
        shuffled.relationships.reverse();
        shuffled.classes.reverse();
        assert_eq!(q.fingerprint(), shuffled.fingerprint());
        assert_eq!(q.canonical(), shuffled.canonical());
    }

    #[test]
    fn fingerprint_distinguishes_different_queries() {
        let (catalog, q) = sample();
        let other = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .filter("vehicle.desc", CompOp::Eq, "flatbed")
            .build()
            .unwrap();
        assert_ne!(q.fingerprint(), other.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let (_, q) = sample();
        assert_eq!(q.fingerprint(), q.clone().fingerprint());
        // Pin the algorithm: a silent change to the encoding would silently
        // invalidate every persisted fingerprint.
        assert_eq!(q.fingerprint(), q.canonical().fingerprint());
    }

    #[test]
    fn value_kinds_do_not_alias() {
        let (catalog, _) = sample();
        let a = QueryBuilder::new(&catalog)
            .select("cargo.desc")
            .filter("cargo.quantity", CompOp::Eq, 1i64)
            .build()
            .unwrap();
        let mut b = a.clone();
        b.selective_predicates[0].value = Value::Bool(true);
        // Not a valid query (type mismatch), but the fingerprint must still
        // discriminate the raw value encodings.
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
