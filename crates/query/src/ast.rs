//! The query AST, mirroring the paper's five-part representation:
//!
//! ```text
//! (SELECT {projectList} {joinPredicateList} {selectivePredicateList}
//!         {relationshipList} {classList})
//! ```
//!
//! The representation is deliberately redundant (the paper keeps it "to
//! improve the clarity of our illustrations"): classes appear both in the
//! class list and inside attribute references. [`Query::validate`] enforces
//! the consistency of the parts.

use serde::{Deserialize, Serialize};
use sqo_catalog::{AttrRef, Catalog, ClassId, DataType, RelId, Value};

use crate::error::QueryError;
use crate::graph::QueryGraph;
use crate::predicate::{JoinPredicate, Predicate, SelPredicate};

/// One projected attribute.
///
/// After a restriction introduction the paper annotates projections with the
/// deduced constant (`cargo.desc="frozen food"` in Figure 2.3): the attribute
/// no longer needs to be fetched because its value is known. `binding`
/// carries that constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Projection {
    pub attr: AttrRef,
    pub binding: Option<Value>,
}

impl Projection {
    pub fn plain(attr: AttrRef) -> Self {
        Self { attr, binding: None }
    }

    pub fn bound(attr: AttrRef, value: Value) -> Self {
        Self { attr, binding: Some(value) }
    }
}

/// A validated(-able) query over a [`Catalog`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub projections: Vec<Projection>,
    pub join_predicates: Vec<JoinPredicate>,
    pub selective_predicates: Vec<SelPredicate>,
    pub relationships: Vec<RelId>,
    pub classes: Vec<ClassId>,
}

impl Query {
    /// An empty query skeleton; use [`crate::QueryBuilder`] for ergonomic
    /// construction.
    pub fn new() -> Self {
        Self {
            projections: Vec::new(),
            join_predicates: Vec::new(),
            selective_predicates: Vec::new(),
            relationships: Vec::new(),
            classes: Vec::new(),
        }
    }

    pub fn has_class(&self, class: ClassId) -> bool {
        self.classes.contains(&class)
    }

    pub fn has_relationship(&self, rel: RelId) -> bool {
        self.relationships.contains(&rel)
    }

    /// All predicates (joins then selectives) as [`Predicate`] values — the
    /// order used when seeding the transformation table.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.join_predicates
            .iter()
            .map(|j| Predicate::Join(*j))
            .chain(self.selective_predicates.iter().cloned().map(Predicate::Sel))
    }

    pub fn predicate_count(&self) -> usize {
        self.join_predicates.len() + self.selective_predicates.len()
    }

    /// Whether `pred` appears in the query *syntactically* (canonical-form
    /// structural equality).
    pub fn contains_predicate(&self, pred: &Predicate) -> bool {
        match pred {
            Predicate::Join(j) => self.join_predicates.contains(j),
            Predicate::Sel(s) => self.selective_predicates.contains(s),
        }
    }

    /// Whether some query predicate *implies* `pred` — the implication-aware
    /// presence test used by `MatchPolicy::Implication` (DESIGN.md §3.2).
    /// Implication never holds between a join and a selective predicate, so
    /// only the matching list is consulted (and nothing is cloned — this
    /// runs once per candidate column when a transformation table is built).
    pub fn satisfies_predicate(&self, pred: &Predicate) -> bool {
        match pred {
            Predicate::Sel(b) => self.selective_predicates.iter().any(|a| a.implies(b)),
            Predicate::Join(b) => self.join_predicates.iter().any(|a| a.implies(b)),
        }
    }

    /// Classes with at least one projection on them.
    pub fn projected_classes(&self) -> Vec<ClassId> {
        let mut out: Vec<ClassId> = self.projections.iter().map(|p| p.attr.class).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The query graph over classes and relationship edges.
    pub fn graph<'a>(&'a self, catalog: &'a Catalog) -> Result<QueryGraph, QueryError> {
        QueryGraph::build(self, catalog)
    }

    /// Full validation against the catalog. Checks:
    /// 1. class list non-empty, duplicate-free; relationships duplicate-free;
    /// 2. every attribute reference resolves and its class is in the list;
    /// 3. every relationship's endpoints are in the list;
    /// 4. type agreement for comparisons;
    /// 5. connectivity of the query graph.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QueryError> {
        if self.classes.is_empty() {
            return Err(QueryError::EmptyClassList);
        }
        let mut seen = Vec::with_capacity(self.classes.len());
        for &c in &self.classes {
            catalog.class(c)?;
            if seen.contains(&c) {
                return Err(QueryError::DuplicateClass(c));
            }
            seen.push(c);
        }
        let mut seen_rels = Vec::with_capacity(self.relationships.len());
        for &r in &self.relationships {
            let def = catalog.relationship(r)?;
            if seen_rels.contains(&r) {
                return Err(QueryError::DuplicateRelationship(r));
            }
            seen_rels.push(r);
            for end in [def.left.class, def.right.class] {
                if !self.has_class(end) {
                    return Err(QueryError::RelationshipEndpointMissing { rel: r, class: end });
                }
            }
        }
        let check_attr = |attr: AttrRef| -> Result<DataType, QueryError> {
            let def = catalog.attr(attr)?;
            if !self.has_class(attr.class) {
                return Err(QueryError::ClassNotInQuery(attr.class));
            }
            Ok(def.ty)
        };
        for p in &self.projections {
            let ty = check_attr(p.attr)?;
            if let Some(b) = &p.binding {
                if b.data_type() != ty {
                    return Err(QueryError::TypeMismatch {
                        context: format!(
                            "projection binding for {} has type {}, expected {}",
                            catalog.qualified_attr_name(p.attr),
                            b.data_type(),
                            ty
                        ),
                    });
                }
            }
        }
        for s in &self.selective_predicates {
            let ty = check_attr(s.attr)?;
            if s.value.data_type() != ty {
                return Err(QueryError::TypeMismatch {
                    context: format!(
                        "predicate on {} compares {} with {}",
                        catalog.qualified_attr_name(s.attr),
                        ty,
                        s.value.data_type()
                    ),
                });
            }
        }
        for j in &self.join_predicates {
            let lt = check_attr(j.left)?;
            let rt = check_attr(j.right)?;
            if lt != rt {
                return Err(QueryError::TypeMismatch {
                    context: format!(
                        "join compares {} ({lt}) with {} ({rt})",
                        catalog.qualified_attr_name(j.left),
                        catalog.qualified_attr_name(j.right),
                    ),
                });
            }
        }
        let graph = self.graph(catalog)?;
        if !graph.is_connected() {
            return Err(QueryError::Disconnected);
        }
        Ok(())
    }

    /// Provable unsatisfiability of the selective-predicate conjunction
    /// (pairwise check — complete for the paper's single-attribute fragment).
    pub fn has_contradiction(&self) -> bool {
        for (i, a) in self.selective_predicates.iter().enumerate() {
            if a.is_unsatisfiable() {
                return true;
            }
            for b in &self.selective_predicates[i + 1..] {
                if a.contradicts(b) {
                    return true;
                }
            }
        }
        false
    }

    /// Deterministic ordering of all list parts; queries that differ only in
    /// list order normalize to the same value (used by tests and the
    /// baseline-equivalence checks).
    pub fn normalized(mut self) -> Self {
        self.projections.sort_by(|a, b| {
            (a.attr.class, a.attr.attr)
                .cmp(&(b.attr.class, b.attr.attr))
                .then_with(|| format!("{:?}", a.binding).cmp(&format!("{:?}", b.binding)))
        });
        self.projections.dedup();
        self.join_predicates.sort_by_key(|j| {
            (j.left.class, j.left.attr, j.right.class, j.right.attr, j.op.symbol())
        });
        self.join_predicates.dedup();
        self.selective_predicates.sort_by(|a, b| {
            (a.attr.class, a.attr.attr, a.op.symbol())
                .cmp(&(b.attr.class, b.attr.attr, b.op.symbol()))
                .then_with(|| format!("{}", a.value).cmp(&format!("{}", b.value)))
        });
        self.selective_predicates.dedup();
        self.relationships.sort_unstable();
        self.relationships.dedup();
        self.classes.sort_unstable();
        self.classes.dedup();
        self
    }
}

impl Default for Query {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompOp;
    use sqo_catalog::example::figure21;

    fn sample(catalog: &Catalog) -> Query {
        // Figure 2.3's original query.
        let vehicle = catalog.class_id("vehicle").unwrap();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplier = catalog.class_id("supplier").unwrap();
        Query {
            projections: vec![
                Projection::plain(catalog.attr_ref("vehicle", "vehicle_no").unwrap()),
                Projection::plain(catalog.attr_ref("cargo", "desc").unwrap()),
                Projection::plain(catalog.attr_ref("cargo", "quantity").unwrap()),
            ],
            join_predicates: vec![],
            selective_predicates: vec![
                SelPredicate::new(
                    catalog.attr_ref("vehicle", "desc").unwrap(),
                    CompOp::Eq,
                    Value::str("refrigerated truck"),
                ),
                SelPredicate::new(
                    catalog.attr_ref("supplier", "name").unwrap(),
                    CompOp::Eq,
                    Value::str("SFI"),
                ),
            ],
            relationships: vec![
                catalog.rel_id("collects").unwrap(),
                catalog.rel_id("supplies").unwrap(),
            ],
            classes: vec![supplier, cargo, vehicle],
        }
    }

    #[test]
    fn figure23_query_validates() {
        let cat = figure21().unwrap();
        let q = sample(&cat);
        q.validate(&cat).expect("figure 2.3 query must validate");
        assert_eq!(q.predicate_count(), 2);
        assert!(!q.has_contradiction());
    }

    #[test]
    fn validation_rejects_foreign_attribute() {
        let cat = figure21().unwrap();
        let mut q = sample(&cat);
        q.projections.push(Projection::plain(cat.attr_ref("engine", "capacity").unwrap()));
        assert_eq!(
            q.validate(&cat),
            Err(QueryError::ClassNotInQuery(cat.class_id("engine").unwrap()))
        );
    }

    #[test]
    fn validation_rejects_type_mismatch() {
        let cat = figure21().unwrap();
        let mut q = sample(&cat);
        q.selective_predicates.push(SelPredicate::new(
            cat.attr_ref("cargo", "quantity").unwrap(),
            CompOp::Eq,
            Value::str("many"),
        ));
        assert!(matches!(q.validate(&cat), Err(QueryError::TypeMismatch { .. })));
    }

    #[test]
    fn validation_rejects_missing_relationship_endpoint() {
        let cat = figure21().unwrap();
        let mut q = sample(&cat);
        q.relationships.push(cat.rel_id("drives").unwrap()); // driver not in class list
        assert!(matches!(q.validate(&cat), Err(QueryError::RelationshipEndpointMissing { .. })));
    }

    #[test]
    fn validation_rejects_disconnected_graph() {
        let cat = figure21().unwrap();
        let mut q = sample(&cat);
        // engine joins the class list with no connecting relationship.
        q.classes.push(cat.class_id("engine").unwrap());
        assert_eq!(q.validate(&cat), Err(QueryError::Disconnected));
    }

    #[test]
    fn contradiction_detection() {
        let cat = figure21().unwrap();
        let mut q = sample(&cat);
        q.selective_predicates.push(SelPredicate::new(
            cat.attr_ref("supplier", "name").unwrap(),
            CompOp::Eq,
            Value::str("NTUC"),
        ));
        assert!(q.has_contradiction());
    }

    #[test]
    fn satisfies_predicate_uses_implication() {
        let cat = figure21().unwrap();
        let mut q = sample(&cat);
        let qty = cat.attr_ref("cargo", "quantity").unwrap();
        q.selective_predicates.push(SelPredicate::new(qty, CompOp::Gt, Value::Int(15)));
        let weaker = Predicate::sel(qty, CompOp::Gt, 10i64);
        let stronger = Predicate::sel(qty, CompOp::Gt, 20i64);
        assert!(q.satisfies_predicate(&weaker));
        assert!(!q.satisfies_predicate(&stronger));
        // Syntactic containment is stricter.
        assert!(!q.contains_predicate(&weaker));
    }

    #[test]
    fn normalized_is_order_insensitive() {
        let cat = figure21().unwrap();
        let q1 = sample(&cat);
        let mut q2 = sample(&cat);
        q2.classes.reverse();
        q2.selective_predicates.reverse();
        q2.relationships.reverse();
        q2.projections.reverse();
        assert_eq!(q1.normalized(), q2.normalized());
    }
}
