//! Pretty printer emitting the paper's query syntax.
//!
//! The output is exactly the shape used throughout the paper:
//!
//! ```text
//! (SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
//!         {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
//!         {collects, supplies} {supplier, cargo, vehicle})
//! ```
//!
//! and round-trips through [`crate::parse_query`].

use std::fmt;

use sqo_catalog::Catalog;

use crate::ast::Query;

/// Name-resolved display wrapper; obtain via [`QueryExt::display`].
#[derive(Debug)]
pub struct QueryDisplay<'a> {
    query: &'a Query,
    catalog: &'a Catalog,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = self.query;
        let c = self.catalog;
        write!(f, "(SELECT {{")?;
        for (i, p) in q.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.qualified_attr_name(p.attr))?;
            if let Some(b) = &p.binding {
                write!(f, "={b}")?;
            }
        }
        write!(f, "}} {{")?;
        for (i, j) in q.join_predicates.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{} {} {}",
                c.qualified_attr_name(j.left),
                j.op,
                c.qualified_attr_name(j.right)
            )?;
        }
        write!(f, "}} {{")?;
        for (i, s) in q.selective_predicates.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {} {}", c.qualified_attr_name(s.attr), s.op, s.value)?;
        }
        write!(f, "}} {{")?;
        for (i, r) in q.relationships.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.rel_name(*r))?;
        }
        write!(f, "}} {{")?;
        for (i, cl) in q.classes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.class_name(*cl))?;
        }
        write!(f, "}})")
    }
}

/// Extension trait providing `query.display(&catalog)`.
pub trait QueryExt {
    fn display<'a>(&'a self, catalog: &'a Catalog) -> QueryDisplay<'a>;
}

impl QueryExt for Query {
    fn display<'a>(&'a self, catalog: &'a Catalog) -> QueryDisplay<'a> {
        QueryDisplay { query: self, catalog }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::predicate::CompOp;
    use sqo_catalog::example::figure21;

    #[test]
    fn renders_paper_shape() {
        let cat = figure21().unwrap();
        let q = QueryBuilder::new(&cat)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        let s = q.display(&cat).to_string();
        assert_eq!(
            s,
            "(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {} \
             {vehicle.desc = \"refrigerated truck\", supplier.name = \"SFI\"} \
             {collects, supplies} {vehicle, cargo, supplier})"
        );
    }

    #[test]
    fn renders_bound_projection() {
        use crate::ast::Projection;
        use sqo_catalog::Value;
        let cat = figure21().unwrap();
        let mut q = QueryBuilder::new(&cat).select("cargo.quantity").build().unwrap();
        q.projections.push(Projection::bound(
            cat.attr_ref("cargo", "desc").unwrap(),
            Value::str("frozen food"),
        ));
        let s = q.display(&cat).to_string();
        assert!(s.contains("cargo.desc=\"frozen food\""), "{s}");
    }

    #[test]
    fn renders_join_predicates() {
        let cat = figure21().unwrap();
        let q = QueryBuilder::new(&cat)
            .select("driver.name")
            .join("driver.license_class", CompOp::Ge, "vehicle.class")
            .via("drives")
            .build()
            .unwrap();
        let s = q.display(&cat).to_string();
        assert!(
            s.contains("vehicle.class <= driver.license_class")
                || s.contains("driver.license_class >= vehicle.class"),
            "{s}"
        );
    }
}
