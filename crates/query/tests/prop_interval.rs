//! Property tests for the predicate/interval fragment.
//!
//! The entire soundness story of implication-aware matching rests on
//! `p.implies(q)  ⇒  models(p) ⊆ models(q)`; these tests check it by brute
//! force over sampled values, together with the algebraic laws the
//! transformation table relies on.

use proptest::prelude::*;
use sqo_catalog::{AttrId, AttrRef, ClassId, Value};
use sqo_query::{CompOp, JoinPredicate, Predicate, SelPredicate};

fn attr() -> AttrRef {
    AttrRef::new(ClassId(0), AttrId(0))
}

fn any_op() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Ne),
        Just(CompOp::Lt),
        Just(CompOp::Le),
        Just(CompOp::Gt),
        Just(CompOp::Ge),
    ]
}

fn int_pred() -> impl Strategy<Value = SelPredicate> {
    (any_op(), -20i64..20).prop_map(|(op, v)| SelPredicate::new(attr(), op, Value::Int(v)))
}

fn str_pred() -> impl Strategy<Value = SelPredicate> {
    (any_op(), 0usize..6)
        .prop_map(|(op, i)| SelPredicate::new(attr(), op, Value::str(format!("s{i}"))))
}

proptest! {
    /// Soundness of implication over integers: if `p.implies(q)`, every
    /// integer satisfying `p` satisfies `q`.
    #[test]
    fn implication_sound_over_ints(p in int_pred(), q in int_pred()) {
        if p.implies(&q) {
            for v in -25i64..25 {
                let val = Value::Int(v);
                if p.eval(&val) {
                    prop_assert!(q.eval(&val), "{p:?} => {q:?} but {v} separates them");
                }
            }
        }
    }

    /// Completeness on the sampled domain: if no integer in a window wider
    /// than both constants separates p from q, implication should hold for
    /// range predicates (we verify the contrapositive only for soundness,
    /// and spot-check reflexivity).
    #[test]
    fn implication_reflexive(p in int_pred()) {
        prop_assert!(p.implies(&p));
    }

    /// Soundness over strings (dense domain: no successor normalization).
    #[test]
    fn implication_sound_over_strings(p in str_pred(), q in str_pred()) {
        if p.implies(&q) {
            for i in 0..8 {
                let val = Value::str(format!("s{i}"));
                if p.eval(&val) {
                    prop_assert!(q.eval(&val));
                }
            }
        }
    }

    /// Contradiction soundness: if `p.contradicts(q)`, no value satisfies
    /// both.
    #[test]
    fn contradiction_sound(p in int_pred(), q in int_pred()) {
        if p.contradicts(&q) {
            for v in -25i64..25 {
                let val = Value::Int(v);
                prop_assert!(!(p.eval(&val) && q.eval(&val)),
                    "{p:?} and {q:?} both admit {v}");
            }
        }
    }

    /// Implication is transitive on the sampled space.
    #[test]
    fn implication_transitive(p in int_pred(), q in int_pred(), r in int_pred()) {
        if p.implies(&q) && q.implies(&r) {
            prop_assert!(p.implies(&r));
        }
    }

    /// Join-predicate canonicalization preserves semantics.
    #[test]
    fn join_canonicalization_preserves_eval(
        op in any_op(),
        l in -10i64..10,
        r in -10i64..10,
    ) {
        let a = AttrRef::new(ClassId(1), AttrId(0));
        let b = AttrRef::new(ClassId(0), AttrId(0));
        let canon = JoinPredicate::new(a, op, b);
        let lv = Value::Int(l);
        let rv = Value::Int(r);
        // canon stores (b, flipped, a); evaluating with operands in canonical
        // order must equal the original op on (l, r).
        let expected = op.eval(lv.compare(&rv).unwrap());
        let got = if canon.left == b {
            canon.eval(&rv, &lv)
        } else {
            canon.eval(&lv, &rv)
        };
        prop_assert_eq!(expected, got);
    }

    /// `Predicate::implies` agrees between the enum wrapper and the leaf
    /// type (no wrapper-level drift).
    #[test]
    fn wrapper_implication_agrees(p in int_pred(), q in int_pred()) {
        let pw = Predicate::Sel(p.clone());
        let qw = Predicate::Sel(q.clone());
        prop_assert_eq!(pw.implies(&qw), p.implies(&q));
    }
}
