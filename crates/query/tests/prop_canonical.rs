//! Property tests for query canonicalization and fingerprinting — the
//! contract the `sqo-service` plan cache rests on:
//!
//! * canonicalization is **idempotent** (`canonical(canonical(q)) ==
//!   canonical(q)`), so re-canonicalizing a cached query is a no-op;
//! * canonicalization is **order-insensitive**: any permutation (and any
//!   duplication) of a query's list parts canonicalizes to the same value
//!   and therefore to the same fingerprint.

use proptest::prelude::*;
use sqo_catalog::{AttrId, AttrRef, ClassId, RelId, Value};
use sqo_query::{CompOp, JoinPredicate, Projection, Query, SelPredicate};

fn any_op() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Ne),
        Just(CompOp::Lt),
        Just(CompOp::Le),
        Just(CompOp::Gt),
        Just(CompOp::Ge),
    ]
}

fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (0usize..8).prop_map(|i| Value::str(format!("v{i}"))),
        prop_oneof![Just(Value::Bool(false)), Just(Value::Bool(true))],
    ]
}

fn any_attr() -> impl Strategy<Value = AttrRef> {
    (0u32..5, 0u32..4).prop_map(|(c, a)| AttrRef::new(ClassId(c), AttrId(a)))
}

fn any_projection() -> impl Strategy<Value = Projection> {
    (any_attr(), prop_oneof![Just(None), any_value().prop_map(Some)])
        .prop_map(|(attr, binding)| Projection { attr, binding })
}

fn any_sel() -> impl Strategy<Value = SelPredicate> {
    (any_attr(), any_op(), any_value()).prop_map(|(a, op, v)| SelPredicate::new(a, op, v))
}

fn any_join() -> impl Strategy<Value = JoinPredicate> {
    (any_attr(), any_op(), any_attr()).prop_map(|(l, op, r)| JoinPredicate::new(l, op, r))
}

/// A structurally arbitrary query (not necessarily catalog-valid, which
/// canonicalization must not require).
fn any_query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(any_projection(), 0..5),
        prop::collection::vec(any_join(), 0..4),
        prop::collection::vec(any_sel(), 0..5),
        prop::collection::vec(0u32..6, 0..4),
        prop::collection::vec(0u32..5, 1..5),
    )
        .prop_map(|(projections, joins, sels, rels, classes)| Query {
            projections,
            join_predicates: joins,
            selective_predicates: sels,
            relationships: rels.into_iter().map(RelId).collect(),
            classes: classes.into_iter().map(ClassId).collect(),
        })
}

/// A deterministic permutation: rotate by `k` and optionally reverse.
fn permute<T: Clone>(xs: &[T], k: usize, rev: bool) -> Vec<T> {
    if xs.is_empty() {
        return Vec::new();
    }
    let k = k % xs.len();
    let mut out: Vec<T> = xs[k..].iter().chain(xs[..k].iter()).cloned().collect();
    if rev {
        out.reverse();
    }
    out
}

proptest! {
    #[test]
    fn canonicalization_is_idempotent(q in any_query()) {
        let once = q.canonical();
        let twice = once.canonical();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.is_canonical());
        prop_assert_eq!(once.fingerprint(), q.fingerprint());
    }

    #[test]
    fn canonicalization_is_order_insensitive(
        q in any_query(),
        k in 0usize..7,
        rev in prop_oneof![Just(false), Just(true)],
    ) {
        let shuffled = Query {
            projections: permute(&q.projections, k, rev),
            join_predicates: permute(&q.join_predicates, k.wrapping_add(1), !rev),
            selective_predicates: permute(&q.selective_predicates, k.wrapping_add(2), rev),
            relationships: permute(&q.relationships, k.wrapping_add(3), !rev),
            classes: permute(&q.classes, k.wrapping_add(4), rev),
        };
        prop_assert_eq!(q.canonical(), shuffled.canonical());
        prop_assert_eq!(q.fingerprint(), shuffled.fingerprint());
    }

    #[test]
    fn duplication_does_not_change_the_canonical_form(q in any_query(), k in 0usize..4) {
        let mut dup = q.clone();
        if let Some(p) = dup.selective_predicates.get(k % dup.selective_predicates.len().max(1)) {
            let p = p.clone();
            dup.selective_predicates.push(p);
        }
        if let Some(&c) = dup.classes.first() {
            dup.classes.push(c);
        }
        prop_assert_eq!(q.canonical(), dup.canonical());
        prop_assert_eq!(q.fingerprint(), dup.fingerprint());
    }
}
