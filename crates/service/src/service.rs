//! The concurrent query service: shared state, prepared queries, and the
//! worker-pool batch front end.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use sqo_constraints::{ConstraintStore, HornConstraint, StoreVersion};
use sqo_core::{OptimizerConfig, OptimizerScratch, SemanticOptimizer};
use sqo_exec::{
    execute_batch_with, execute_with, plan_query_shared, BatchExecScratch, CostBasedOracle,
    CostModel, ExecError, ExecScratch, PhysicalPlan, ProbeBinding, ResultSet,
};
use sqo_query::{Query, QueryError, QueryFingerprint};
use sqo_snapshot::{
    LoadError, SnapshotBuilder, SnapshotFile, ValidationLevel, SEC_CONSTRAINTS, SEC_PLANSEEDS,
};
use sqo_storage::{DataWrite, Database, StorageError, VersionedDatabase, WriteOutcome};

use crate::cache::{CacheEntry, CacheStats, ShardedCache};
use crate::persist;
use crate::singleflight::{FlightError, FlightKey, MissGuard, MissWaiter, Registered};

thread_local! {
    /// Per-worker reusable optimizer + executor buffers: the cold path of
    /// every service thread runs allocation-free once warmed up, without
    /// any cross-thread coordination.
    static WORKER_SCRATCH: RefCell<(OptimizerScratch, ExecScratch, BatchExecScratch)> =
        RefCell::new((OptimizerScratch::new(), ExecScratch::new(), BatchExecScratch::new()));
}

/// Anything that can go wrong answering a query or applying a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The query failed validation or semantic optimization.
    Query(QueryError),
    /// Planning or execution failed.
    Exec(ExecError),
    /// A write batch failed validation or integrity enforcement.
    Storage(StorageError),
    /// A [`QueryService::run_batch`] worker panicked before answering this
    /// request. The batch still completes: every request the poisoned
    /// worker had claimed surfaces as this error instead of aborting the
    /// caller.
    WorkerPanicked,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Query(e) => write!(f, "query error: {e}"),
            ServiceError::Exec(e) => write!(f, "execution error: {e}"),
            ServiceError::Storage(e) => write!(f, "write error: {e}"),
            ServiceError::WorkerPanicked => write!(f, "batch worker panicked mid-request"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Query(e) => Some(e),
            ServiceError::Exec(e) => Some(e),
            ServiceError::Storage(e) => Some(e),
            ServiceError::WorkerPanicked => None,
        }
    }
}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> Self {
        ServiceError::Query(e)
    }
}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> Self {
        ServiceError::Exec(e)
    }
}

impl From<StorageError> for ServiceError {
    fn from(e: StorageError) -> Self {
        ServiceError::Storage(e)
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Cache shard count (rounded up to a power of two).
    pub shards: usize,
    /// Total cached entries across all shards.
    pub cache_capacity: usize,
    /// Also memoize result sets, not just rewrites and plans. Sound under
    /// writes because the memo is gated on the data epoch it was computed
    /// at: plans survive data writes, memoized results are recomputed on the
    /// first request after one. Turn off to re-execute on every request.
    pub cache_results: bool,
    /// Skip the cache entirely — every request re-optimizes, re-plans and
    /// re-executes. The cold path of the E9 benchmark.
    pub bypass_cache: bool,
    /// Gather window of the batch execution tier: warm requests on the same
    /// `(fingerprint, store version, data epoch)` coordinates are answered
    /// by **one** shared execution, fanned back out to every member. In
    /// [`QueryService::run_batch`] the window is explicit — up to this many
    /// consecutive requests are gathered before grouping; in
    /// [`QueryService::try_run`] it is temporal — duplicates arriving while
    /// a hit's execution is in flight join it. `1` disables grouping
    /// (singleflight still dedups *misses* regardless).
    pub batch_window: usize,
    /// Semantic-optimizer configuration used for every miss.
    pub optimizer: OptimizerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            cache_capacity: 1024,
            cache_results: true,
            bypass_cache: false,
            batch_window: 1,
            optimizer: OptimizerConfig::paper(),
        }
    }
}

/// A query prepared for (repeated) execution: the cached optimization
/// artifacts pinned at one constraint-store epoch.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    entry: Arc<CacheEntry>,
    /// Constraint-store epoch the rewrite was derived under.
    pub epoch: u64,
    /// Whether preparation was answered from the cache.
    pub cache_hit: bool,
}

impl PreparedQuery {
    /// The canonical form of the prepared query (the cache identity).
    pub fn canonical(&self) -> &Query {
        &self.entry.canonical
    }

    /// The semantically optimized query.
    pub fn optimized(&self) -> &Query {
        &self.entry.optimized
    }

    /// The shared physical plan; `None` iff the answer is provably empty.
    pub fn plan(&self) -> Option<&Arc<PhysicalPlan>> {
        self.entry.plan.as_ref()
    }

    /// The optimizer proved the answer empty without touching the database.
    pub fn provably_empty(&self) -> bool {
        self.entry.provably_empty
    }
}

/// One answered request.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The rows, in the canonical query's column order.
    pub results: Arc<ResultSet>,
    /// Whether the optimization/plan came from the cache.
    pub cache_hit: bool,
    /// Constraint-store epoch the rewrite was derived under.
    pub epoch: u64,
    /// Data epoch of the snapshot the results were computed against — every
    /// answer is internally consistent with exactly one linearized epoch.
    pub data_epoch: u64,
}

/// How a [`QueryService::try_run`] call landed — the non-blocking
/// counterpart of [`QueryService::run`]'s `ServiceResponse`.
#[derive(Debug)]
pub enum TryRun {
    /// Answered synchronously: a cache hit, the bypass path, or a
    /// fingerprint-collision fallback.
    Done(ServiceResponse),
    /// First miss on these coordinates: the caller must run
    /// [`QueryService::complete_miss`] with the guard (dropping it instead
    /// aborts the flight and hands leadership to a retrying follower).
    Leader(MissGuard),
    /// Duplicate of an in-flight miss: poll or wait on the waiter for the
    /// leader's published answer.
    Follower(MissWaiter),
}

/// Point-in-time service counters for the bench harness.
///
/// Snapshots taken mid-flight are **self-consistent**: `accepted ==
/// cache.hits + cache.misses` holds in every snapshot (the cache derives
/// both sides from one pair of ordered atomics, see
/// [`CacheStats`](crate::CacheStats)), and every counter is monotone
/// across successive snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// `run`/`run_batch`/`try_run` requests accepted.
    pub requests: u64,
    /// Requests that completed a plan-cache lookup. Exactly
    /// `cache.hits + cache.misses` in every snapshot; trails `requests`
    /// only by the requests currently between admission and their lookup
    /// (and by bypass-cache requests, which never look up).
    pub accepted: u64,
    /// Full semantic-optimization passes actually executed (cache misses).
    pub optimizations: u64,
    /// Physical plan executions (not answered from a memoized result).
    pub executions: u64,
    /// Write batches committed through [`QueryService::write`].
    pub writes: u64,
    /// Misses that registered as singleflight leaders (each ran one
    /// optimization on behalf of every concurrent duplicate).
    pub singleflight_leaders: u64,
    /// Misses that joined an already-in-flight optimization instead of
    /// running their own.
    pub singleflight_followers: u64,
    /// Warm groups closed by the batch execution tier (each ran one shared
    /// execution on behalf of every member).
    pub batch_groups: u64,
    /// Requests answered through a grouped execution, across all groups —
    /// `batch_size / batch_groups` is the achieved mean gather width.
    pub batch_size: u64,
    /// Current constraint-store epoch.
    pub epoch: u64,
    /// Current data epoch of the backing database.
    pub data_epoch: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
}

/// A long-lived, thread-shared query-answering engine.
///
/// Owns the database (behind a [`VersionedDatabase`] write path) and the
/// constraint store behind `Arc`s, so any number of client threads can call
/// [`QueryService::run`] concurrently (`&self` throughout). Repeated
/// queries — under *any* spelling that canonicalizes identically — are
/// answered from an N-way sharded LRU cache keyed by the canonical
/// fingerprint and validated against the store's
/// [`StoreVersion`](sqo_constraints::StoreVersion).
///
/// Invalidation is two-level:
///
/// * **Constraint inserts** purge only cache entries whose class set
///   overlaps the inserted constraint's; disjoint entries are revalidated
///   in place. Statistics changes purge everything (every cost-based
///   decision may shift).
/// * **Data writes** ([`QueryService::write`]) never touch the plan cache —
///   plans depend only on constraints and statistics — but gate each
///   entry's memoized result set on the data epoch it was computed at, so
///   the first request after a write re-executes the (still cached) plan.
///
/// Answers are always produced in the **canonical** query's column order
/// (projections sorted), so every spelling of a query receives an
/// identically-shaped result.
///
/// ```
/// use std::sync::Arc;
/// use sqo_service::QueryService;
/// use sqo_workload::{paper_scenario, DbSize};
///
/// let s = paper_scenario(DbSize::Db1, 42);
/// let service = QueryService::new(Arc::new(s.store), Arc::new(s.db));
/// let cold = service.run(&s.queries[0]).unwrap();
/// let warm = service.run(&s.queries[0]).unwrap();
/// assert!(!cold.cache_hit && warm.cache_hit);
/// assert_eq!(cold.results, warm.results);
/// ```
#[derive(Debug)]
pub struct QueryService {
    db: Arc<VersionedDatabase>,
    /// Swapped wholesale on constraint changes (copy-on-write): in-flight
    /// queries drain against the store they started with.
    store: RwLock<Arc<ConstraintStore>>,
    /// Serializes store writers so successor stores are built *outside*
    /// `store`'s write lock — readers only ever wait for the brief swap.
    writer: parking_lot::Mutex<()>,
    cache: ShardedCache,
    model: CostModel,
    config: ServiceConfig,
    requests: AtomicU64,
    optimizations: AtomicU64,
    executions: AtomicU64,
    writes: AtomicU64,
    sf_leaders: AtomicU64,
    sf_followers: AtomicU64,
    batch_groups: AtomicU64,
    batch_size: AtomicU64,
}

impl QueryService {
    pub fn new(store: Arc<ConstraintStore>, db: Arc<Database>) -> Self {
        Self::with_config(store, db, ServiceConfig::default())
    }

    pub fn with_config(
        store: Arc<ConstraintStore>,
        db: Arc<Database>,
        config: ServiceConfig,
    ) -> Self {
        Self::with_versioned_db(store, Arc::new(VersionedDatabase::new(db)), config)
    }

    /// A service over an externally owned write path — used when writers or
    /// a second service (e.g. an uncached cross-checking reference) must
    /// share the same evolving database.
    pub fn with_versioned_db(
        store: Arc<ConstraintStore>,
        db: Arc<VersionedDatabase>,
        config: ServiceConfig,
    ) -> Self {
        Self {
            db,
            store: RwLock::new(store),
            writer: parking_lot::Mutex::new(()),
            cache: ShardedCache::new(config.shards, config.cache_capacity),
            model: CostModel::default(),
            config,
            requests: AtomicU64::new(0),
            optimizations: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            sf_leaders: AtomicU64::new(0),
            sf_followers: AtomicU64::new(0),
            batch_groups: AtomicU64::new(0),
            batch_size: AtomicU64::new(0),
        }
    }

    /// The current database snapshot (immutable; answers computed from it
    /// are consistent with its [`Database::data_version`]).
    pub fn db(&self) -> Arc<Database> {
        self.db.snapshot()
    }

    /// The versioned write path shared by every reader and writer.
    pub fn versioned_db(&self) -> &Arc<VersionedDatabase> {
        &self.db
    }

    /// The current data epoch (see [`VersionedDatabase::data_epoch`]).
    pub fn data_epoch(&self) -> u64 {
        self.db.data_epoch()
    }

    /// A snapshot handle to the current constraint store.
    pub fn store(&self) -> Arc<ConstraintStore> {
        Arc::clone(&self.store.read())
    }

    /// The current semantic epoch (see [`ConstraintStore::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.store.read().epoch()
    }

    /// The current unambiguous store identity.
    pub fn store_version(&self) -> StoreVersion {
        self.store.read().version()
    }

    /// Applies one atomic batch of data writes, advancing the data epoch;
    /// returns the batch's [`WriteOutcome`]. Plans stay cached (they depend
    /// only on constraints + statistics tier); memoized result sets are
    /// recomputed lazily because their data-epoch gate no longer matches.
    pub fn write(&self, writes: &[DataWrite]) -> Result<WriteOutcome, ServiceError> {
        let outcome = self.db.write(writes)?;
        // ordering: monotone display counter.
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(outcome)
    }

    /// Adds a constraint by building a successor store (copy-on-write) and
    /// swapping it in; returns the new epoch. Invalidation is
    /// **class-overlap precise**: only cache entries whose canonical query
    /// mentions one of the constraint's classes (reported by the store's
    /// by-class index postings) are purged; every other entry is revalidated
    /// under the new store version and keeps serving.
    ///
    /// The O(#constraints) rebuild happens outside the store lock (writers
    /// are serialized by a dedicated mutex), so concurrent readers keep
    /// serving off the old store and only ever block on the pointer swap.
    pub fn add_constraint(&self, constraint: HornConstraint) -> u64 {
        let _writing = self.writer.lock();
        let base = self.store();
        let prev = base.version();
        let (next, id) = base.with_constraint_tracked(constraint);
        let touched = next.touched_classes(id);
        let next = Arc::new(next);
        let version = next.version();
        *self.store.write() = next;
        self.cache.invalidate_classes(prev, version, &touched);
        version.epoch
    }

    /// Records an external statistics change (bumping the epoch so cached
    /// cost-based rewrites are re-derived); returns the new epoch. Every
    /// entry is purged — any cost-based decision may shift under new
    /// statistics, so there is no sound subset to keep.
    pub fn note_statistics_change(&self) -> u64 {
        let _writing = self.writer.lock();
        let store = self.store();
        let epoch = store.note_statistics_change();
        self.cache.purge_stale(store.version());
        epoch
    }

    /// Swaps in an externally rebuilt constraint store (e.g. after a full
    /// closure rematerialization), raising its epoch past the old store's so
    /// epoch sequences stay monotone across the swap, and purges every cache
    /// entry — the new generation can never hit the old one's entries.
    /// Returns the store's post-swap epoch.
    pub fn replace_store(&self, next: Arc<ConstraintStore>) -> u64 {
        let _writing = self.writer.lock();
        let old = self.store();
        next.raise_epoch_above(&old);
        let version = next.version();
        *self.store.write() = next;
        self.cache.purge_stale(version);
        version.epoch
    }

    /// Canonicalizes, fingerprints and resolves `query` to its optimization
    /// artifacts — from the cache when possible, by running the full
    /// semantic-optimization + planning pipeline on a miss.
    pub fn prepare(&self, query: &Query) -> Result<PreparedQuery, ServiceError> {
        let canonical = query.canonical();
        let store = self.store();
        let version = store.version();
        let fingerprint = canonical.fingerprint_canonical();
        if !self.config.bypass_cache {
            if let Some(entry) = self.cache.get(fingerprint, &canonical, version) {
                return Ok(PreparedQuery { entry, epoch: version.epoch, cache_hit: true });
            }
        }
        let entry = Arc::new(self.build_entry(canonical, &store)?);
        if !self.config.bypass_cache {
            self.cache.insert(fingerprint, version, Arc::clone(&entry));
        }
        Ok(PreparedQuery { entry, epoch: version.epoch, cache_hit: false })
    }

    /// The miss path: semantic optimization, then planning (skipped when
    /// the optimizer proves the answer empty). Both run against one
    /// database snapshot, so cost estimates are internally consistent.
    fn build_entry(
        &self,
        canonical: Query,
        store: &Arc<ConstraintStore>,
    ) -> Result<CacheEntry, ServiceError> {
        let db = self.db.snapshot();
        let optimizer =
            SemanticOptimizer::shared_with_config(Arc::clone(store), self.config.optimizer);
        let oracle = CostBasedOracle::with_model(&db, self.model);
        let out = WORKER_SCRATCH
            .with(|s| optimizer.optimize_with(&canonical, &oracle, &mut s.borrow_mut().0))?;
        // ordering: monotone display counter.
        self.optimizations.fetch_add(1, Ordering::Relaxed);
        let provably_empty = out.report.provably_empty;
        let (plan, columns) = if provably_empty {
            (None, out.query.projections.iter().map(|p| p.attr).collect())
        } else {
            let plan = plan_query_shared(&db, &out.query, &self.model)?;
            let columns = plan.projections.iter().map(|p| p.attr).collect();
            (Some(plan), columns)
        };
        Ok(CacheEntry::new(canonical, out.query, plan, provably_empty, columns))
    }

    /// Executes a prepared query, sharing memoized results when they were
    /// computed at the current data epoch.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<Arc<ResultSet>, ServiceError> {
        self.execute_entry(&prepared.entry).map(|(results, _)| results)
    }

    /// The execution core: resolves the current snapshot, serves the result
    /// memo when its data epoch matches, re-executes otherwise. Returns the
    /// results and the data epoch they are consistent with.
    fn execute_entry(&self, entry: &CacheEntry) -> Result<(Arc<ResultSet>, u64), ServiceError> {
        let db = self.db.snapshot();
        let data_epoch = db.data_version();
        let memoize = self.config.cache_results && !self.config.bypass_cache;
        if memoize {
            if let Some(cached) = entry.memoized_results(data_epoch) {
                return Ok((cached, data_epoch));
            }
        }
        let results = if entry.provably_empty {
            Arc::new(ResultSet::new(entry.columns.clone()))
        } else {
            let plan = entry.plan.as_ref().expect("non-empty entries carry a plan");
            let (res, _counters) =
                WORKER_SCRATCH.with(|s| execute_with(&db, plan, &mut s.borrow_mut().1))?;
            // ordering: monotone display counter.
            self.executions.fetch_add(1, Ordering::Relaxed);
            Arc::new(res)
        };
        if memoize {
            entry.publish_results(data_epoch, &results);
        }
        Ok((results, data_epoch))
    }

    /// [`QueryService::execute_entry`] through the batch executor: a
    /// gathered group's one shared execution runs as a width-1
    /// [`ProbeBinding::AsPlanned`] batch via [`execute_batch_with`] — the
    /// group members are *identical* queries, so one probe answers them all
    /// and the result is `Arc`-fanned out — while exercising exactly the
    /// interleaved machinery wider (re-keyed) batches use.
    fn execute_entry_group(
        &self,
        entry: &CacheEntry,
    ) -> Result<(Arc<ResultSet>, u64), ServiceError> {
        let db = self.db.snapshot();
        let data_epoch = db.data_version();
        let memoize = self.config.cache_results && !self.config.bypass_cache;
        if memoize {
            if let Some(cached) = entry.memoized_results(data_epoch) {
                return Ok((cached, data_epoch));
            }
        }
        let results = if entry.provably_empty {
            Arc::new(ResultSet::new(entry.columns.clone()))
        } else {
            let plan = entry.plan.as_ref().expect("non-empty entries carry a plan");
            let mut batch = WORKER_SCRATCH.with(|s| {
                execute_batch_with(&db, plan, &[ProbeBinding::AsPlanned], &mut s.borrow_mut().2)
            })?;
            let (res, _counters) = batch.pop().expect("width-1 batch yields one result");
            // ordering: monotone display counter.
            self.executions.fetch_add(1, Ordering::Relaxed);
            Arc::new(res)
        };
        if memoize {
            entry.publish_results(data_epoch, &results);
        }
        Ok((results, data_epoch))
    }

    /// Prepare + execute in one call — the per-request entry point.
    pub fn run(&self, query: &Query) -> Result<ServiceResponse, ServiceError> {
        // ordering: monotone display counter; `accepted` consistency is
        // carried by the cache's lookups/hits pair, not this one.
        self.requests.fetch_add(1, Ordering::Relaxed);
        let prepared = self.prepare(query)?;
        let (results, data_epoch) = self.execute_entry(&prepared.entry)?;
        Ok(ServiceResponse {
            results,
            cache_hit: prepared.cache_hit,
            epoch: prepared.epoch,
            data_epoch,
        })
    }

    /// The **non-blocking** per-request entry point for reactor-style
    /// callers (the `sqo-frontend` crate): like [`QueryService::run`], but
    /// a cache miss never waits behind another request's optimization.
    ///
    /// * A plan-cache hit (and the bypass path) is answered synchronously
    ///   as [`TryRun::Done`] — execution is the caller's CPU work either
    ///   way.
    /// * The **first** miss on a `(fingerprint, store version, data
    ///   epoch)` coordinate becomes [`TryRun::Leader`]: the caller owes
    ///   the service one [`QueryService::complete_miss`] call, which runs
    ///   the full optimize+plan+execute pipeline and publishes the answer
    ///   to every concurrent duplicate.
    /// * Every further miss on the same coordinates becomes
    ///   [`TryRun::Follower`] with a [`MissWaiter`]: poll it with a waker
    ///   (no thread parked) or [`MissWaiter::wait`] for it. An
    ///   [`FlightError::Aborted`](crate::FlightError::Aborted) outcome
    ///   means the leader dropped its guard without completing — call
    ///   `try_run` again; the retry re-checks the cache and may lead.
    pub fn try_run(&self, query: &Query) -> Result<TryRun, ServiceError> {
        // ordering: monotone display counter; `accepted` consistency is
        // carried by the cache's lookups/hits pair, not this one.
        self.requests.fetch_add(1, Ordering::Relaxed);
        let canonical = query.canonical();
        let store = self.store();
        let version = store.version();
        if self.config.bypass_cache {
            let entry = Arc::new(self.build_entry(canonical, &store)?);
            let (results, data_epoch) = self.execute_entry(&entry)?;
            return Ok(TryRun::Done(ServiceResponse {
                results,
                cache_hit: false,
                epoch: version.epoch,
                data_epoch,
            }));
        }
        let fingerprint = canonical.fingerprint_canonical();
        if let Some(entry) = self.cache.get(fingerprint, &canonical, version) {
            if self.config.batch_window > 1 {
                return self.run_hit_grouped(entry, canonical, store, version, fingerprint);
            }
            let (results, data_epoch) = self.execute_entry(&entry)?;
            return Ok(TryRun::Done(ServiceResponse {
                results,
                cache_hit: true,
                epoch: version.epoch,
                data_epoch,
            }));
        }
        let key = FlightKey { fingerprint, version, data_epoch: self.db.data_epoch() };
        match self.cache.flights().register(key, &canonical) {
            Registered::Leader(flight) => {
                // ordering: monotone display counter.
                self.sf_leaders.fetch_add(1, Ordering::Relaxed);
                let table = Arc::clone(self.cache.flights());
                Ok(TryRun::Leader(MissGuard::new(key, canonical, store, table, flight)))
            }
            Registered::Follower(flight) => {
                // ordering: monotone display counter.
                self.sf_followers.fetch_add(1, Ordering::Relaxed);
                Ok(TryRun::Follower(MissWaiter::new(flight)))
            }
            Registered::Collision => {
                // A 64-bit fingerprint collision with the in-flight query:
                // sharing would serve the wrong answer, so this request
                // runs the undeduplicated miss path on its own.
                let entry = Arc::new(self.build_entry(canonical, &store)?);
                self.cache.insert(fingerprint, version, Arc::clone(&entry));
                let (results, data_epoch) = self.execute_entry(&entry)?;
                Ok(TryRun::Done(ServiceResponse {
                    results,
                    cache_hit: false,
                    epoch: version.epoch,
                    data_epoch,
                }))
            }
        }
    }

    /// The temporal gather window of the batch tier: a warm hit (when
    /// `batch_window > 1`) registers its `(fingerprint, store version,
    /// data epoch)` coordinates in the singleflight table *before*
    /// executing. The first arrival leads — it executes through the batch
    /// executor, resolves the flight, and answers synchronously; duplicates
    /// arriving during that execution become [`TryRun::Follower`]s and are
    /// fanned the leader's `Arc`-shared answer through the exact machinery
    /// miss followers already use. The window is the leader's execution
    /// time: no timers, no added latency for unduplicated traffic.
    ///
    /// Hit flights bump `batch_groups`/`batch_size`, **not** the
    /// `singleflight_*` counters, which keep meaning "deduplicated misses".
    fn run_hit_grouped(
        &self,
        entry: Arc<CacheEntry>,
        canonical: Query,
        store: Arc<ConstraintStore>,
        version: StoreVersion,
        fingerprint: QueryFingerprint,
    ) -> Result<TryRun, ServiceError> {
        let key = FlightKey { fingerprint, version, data_epoch: self.db.data_epoch() };
        match self.cache.flights().register(key, &canonical) {
            Registered::Leader(flight) => {
                let table = Arc::clone(self.cache.flights());
                let guard = MissGuard::new(key, canonical, store, table, flight);
                // ordering: monotone display counters.
                self.batch_groups.fetch_add(1, Ordering::Relaxed);
                self.batch_size.fetch_add(1, Ordering::Relaxed); // ordering: display counter
                let outcome = self.execute_entry_group(&entry).map(|(results, data_epoch)| {
                    ServiceResponse { results, cache_hit: true, epoch: version.epoch, data_epoch }
                });
                match outcome {
                    Ok(response) => {
                        guard.finish(Ok(response.clone()));
                        Ok(TryRun::Done(response))
                    }
                    Err(e) => {
                        guard.finish(Err(FlightError::Failed(e.clone())));
                        Err(e)
                    }
                }
            }
            Registered::Follower(flight) => {
                // ordering: monotone display counter.
                self.batch_size.fetch_add(1, Ordering::Relaxed);
                Ok(TryRun::Follower(MissWaiter::new(flight)))
            }
            Registered::Collision => {
                // A fingerprint collision with the in-flight query: answer
                // solo rather than share the wrong result.
                let (results, data_epoch) = self.execute_entry(&entry)?;
                Ok(TryRun::Done(ServiceResponse {
                    results,
                    cache_hit: true,
                    epoch: version.epoch,
                    data_epoch,
                }))
            }
        }
    }

    /// Runs the miss pipeline a [`TryRun::Leader`] owes: semantic
    /// optimization and planning against the store version captured at
    /// registration, cache publication **stamped with that same version**
    /// (a store swapped mid-flight can never receive an entry derived
    /// under its predecessor — lookups at the successor version miss and
    /// re-derive), then execution. The response resolves the flight, so
    /// every follower receives the identical `Arc`-shared answer.
    ///
    /// On failure the error is shared with the followers too (re-running
    /// the same pipeline would fail the same way).
    pub fn complete_miss(&self, guard: MissGuard) -> Result<ServiceResponse, ServiceError> {
        let key = guard.key();
        let built = self.build_entry(guard.canonical().clone(), guard.store());
        let outcome = built.and_then(|entry| {
            let entry = Arc::new(entry);
            self.cache.insert(key.fingerprint, key.version, Arc::clone(&entry));
            let (results, data_epoch) = self.execute_entry(&entry)?;
            Ok(ServiceResponse { results, cache_hit: false, epoch: key.version.epoch, data_epoch })
        });
        match outcome {
            Ok(response) => {
                guard.finish(Ok(response.clone()));
                Ok(response)
            }
            Err(e) => {
                guard.finish(Err(FlightError::Failed(e.clone())));
                Err(e)
            }
        }
    }

    /// Answers `queries` on a fixed pool of `workers` threads (closed-loop:
    /// each worker pulls the next request as soon as it finishes one).
    /// Responses come back in request order.
    ///
    /// A worker panic poisons only the requests that worker had claimed:
    /// each surfaces as [`ServiceError::WorkerPanicked`], every other
    /// request completes normally, and the caller is never aborted.
    ///
    /// With `batch_window > 1` (and the cache enabled) the stream first
    /// passes through the batch tier's explicit gather window: consecutive
    /// windows of up to `batch_window` requests are grouped by
    /// `(fingerprint, store version, data epoch)`, each group runs the
    /// pipeline **once**, and its answer is `Arc`-fanned back to every
    /// member — a duplicate-heavy warm stream costs one execution per
    /// distinct query per window instead of one per request.
    pub fn run_batch(
        &self,
        queries: &[Query],
        workers: usize,
    ) -> Vec<Result<ServiceResponse, ServiceError>> {
        if self.config.batch_window > 1 && !self.config.bypass_cache {
            return self.run_batch_grouped(queries, workers);
        }
        self.run_batch_with(queries, workers, |q| self.run(q))
    }

    /// The gather pass + worker loop behind grouped [`QueryService::run_batch`].
    fn run_batch_grouped(
        &self,
        queries: &[Query],
        workers: usize,
    ) -> Vec<Result<ServiceResponse, ServiceError>> {
        let window = self.config.batch_window.max(1);
        // Gather pass: within each consecutive window, requests landing on
        // the same (fingerprint, store version, data epoch) coordinates
        // merge into one group. The group keeps the canonical query, and a
        // canonical-equality check guards against fingerprint collisions —
        // a colliding request simply opens its own (unindexed) group.
        let mut groups: Vec<(Query, Vec<usize>)> = Vec::new();
        let mut open: HashMap<(QueryFingerprint, StoreVersion, u64), usize> = HashMap::new();
        for (i, query) in queries.iter().enumerate() {
            if i % window == 0 {
                open.clear();
            }
            let canonical = query.canonical();
            let key =
                (canonical.fingerprint_canonical(), self.store().version(), self.db.data_epoch());
            match open.get(&key) {
                Some(&g) if groups[g].0 == canonical => groups[g].1.push(i),
                Some(_) => groups.push((canonical, vec![i])),
                None => {
                    open.insert(key, groups.len());
                    groups.push((canonical, vec![i]));
                }
            }
        }
        let workers = workers.clamp(1, groups.len().max(1));
        let next = AtomicUsize::new(0);
        let mut out: Vec<Result<ServiceResponse, ServiceError>> =
            (0..queries.len()).map(|_| Err(ServiceError::WorkerPanicked)).collect();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let groups = &groups;
                    let tx = tx.clone();
                    scope.spawn(move || loop {
                        // ordering: work-index claim; RMW atomicity alone makes indexes
                        // unique, and scope join orders results after all claims.
                        let g = next.fetch_add(1, Ordering::Relaxed);
                        let Some((canonical, members)) = groups.get(g) else { break };
                        let _ = tx.send((g, self.run_group(canonical, members.len())));
                    })
                })
                .collect();
            drop(tx);
            for (g, response) in rx {
                for &i in &groups[g].1 {
                    out[i] = response.clone();
                }
            }
            for handle in handles {
                let _ = handle.join();
            }
        });
        out
    }

    /// One gathered group: resolve the cache entry once (building it on a
    /// miss), run one shared execution through the batch executor, and
    /// account all `size` members.
    fn run_group(&self, canonical: &Query, size: usize) -> Result<ServiceResponse, ServiceError> {
        // ordering: monotone display counter.
        self.requests.fetch_add(size as u64, Ordering::Relaxed);
        let store = self.store();
        let version = store.version();
        let fingerprint = canonical.fingerprint_canonical();
        let (entry, cache_hit) = match self.cache.get(fingerprint, canonical, version) {
            Some(entry) => (entry, true),
            None => {
                let entry = Arc::new(self.build_entry(canonical.clone(), &store)?);
                self.cache.insert(fingerprint, version, Arc::clone(&entry));
                (entry, false)
            }
        };
        let (results, data_epoch) = self.execute_entry_group(&entry)?;
        // ordering: monotone display counters.
        self.batch_groups.fetch_add(1, Ordering::Relaxed);
        self.batch_size.fetch_add(size as u64, Ordering::Relaxed); // ordering: display counter
        Ok(ServiceResponse { results, cache_hit, epoch: version.epoch, data_epoch })
    }

    /// [`QueryService::run_batch`] generic over the per-query closure, so
    /// tests can inject a panicking request deterministically.
    fn run_batch_with(
        &self,
        queries: &[Query],
        workers: usize,
        run: impl Fn(&Query) -> Result<ServiceResponse, ServiceError> + Sync,
    ) -> Vec<Result<ServiceResponse, ServiceError>> {
        let workers = workers.clamp(1, queries.len().max(1));
        let next = AtomicUsize::new(0);
        let mut out: Vec<Result<ServiceResponse, ServiceError>> =
            (0..queries.len()).map(|_| Err(ServiceError::WorkerPanicked)).collect();
        // Workers stream answers over a channel instead of returning them
        // from the thread closure: answers a worker produced before
        // panicking survive, and join() errors are tolerated — requests
        // the poisoned worker claimed but never answered keep their
        // `WorkerPanicked` placeholder.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let run = &run;
                    let tx = tx.clone();
                    scope.spawn(move || loop {
                        // ordering: work-index claim; RMW atomicity alone makes indexes
                        // unique, and scope join orders results after all claims.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(query) = queries.get(i) else { break };
                        let _ = tx.send((i, run(query)));
                    })
                })
                .collect();
            drop(tx);
            for (i, response) in rx {
                out[i] = response;
            }
            for handle in handles {
                let _ = handle.join();
            }
        });
        out
    }

    /// Serializes the full service state into a `.sqos` snapshot: the
    /// current database image (catalog, extents, links, indexes,
    /// statistics), the compiled constraint store, and every live
    /// plan-cache entry as a warm seed. The byte layout is specified in
    /// `docs/FORMAT.md`.
    ///
    /// The snapshot is a point-in-time cut: the database image and the
    /// constraint store are each internally consistent snapshots, and only
    /// cache entries valid at the captured store version are persisted.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let db = self.db.snapshot();
        let store = self.store();
        let mut builder = SnapshotBuilder::new();
        for (id, payload) in sqo_storage::database_sections(&db) {
            builder.section(id, payload);
        }
        builder.section(SEC_CONSTRAINTS, persist::encode_constraints(&store));
        builder.section(
            SEC_PLANSEEDS,
            persist::encode_plan_seeds(&self.cache.entries(), store.version()),
        );
        builder.finish()
    }

    /// Writes [`QueryService::snapshot_bytes`] to `path`.
    ///
    /// # Errors
    /// [`LoadError::Io`] if the file cannot be written.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), LoadError> {
        std::fs::write(path, self.snapshot_bytes()).map_err(LoadError::from)
    }

    /// Reconstructs a service from snapshot bytes, validating at `level`
    /// (see `docs/VALIDATION.md` for what each level buys and costs).
    ///
    /// The rebuilt constraint store keeps the saved semantic epoch (raised
    /// monotonically) but gets a **fresh generation** — generations are
    /// process-local, so persisted cache seeds are re-stamped to the new
    /// store's version as they are inserted. Plan seeds are skipped
    /// entirely when `config.bypass_cache` is set.
    ///
    /// # Errors
    /// Any [`LoadError`]: container damage at Standard, id-space or
    /// ordering violations at Strict, re-derivation mismatches at Audit.
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        level: ValidationLevel,
        config: ServiceConfig,
    ) -> Result<Self, LoadError> {
        let file = SnapshotFile::parse(bytes)?;
        let db = sqo_storage::decode_database_from(&file, level)?;
        let catalog = Arc::clone(db.catalog());
        let constraints =
            file.section(SEC_CONSTRAINTS).ok_or(LoadError::MissingSection("CONSTRAINTS"))?;
        let seed = persist::decode_constraints(constraints, &catalog, level)?;
        if level.is_audit() {
            persist::audit_constraints(&seed, &catalog)?;
        }
        let plan_seeds = match file.section(SEC_PLANSEEDS) {
            Some(payload) => persist::decode_plan_seeds(payload, &catalog, level)?,
            None => Vec::new(),
        };
        let store = persist::rebuild_store(Arc::clone(&catalog), seed)?;
        let service = Self::with_config(Arc::new(store), Arc::new(db), config);
        if !service.config.bypass_cache {
            let version = service.store_version();
            for s in plan_seeds {
                service.cache.insert(s.fingerprint, version, Arc::new(s.entry));
            }
        }
        Ok(service)
    }

    /// Boots a service from a `.sqos` file written by
    /// [`QueryService::save_snapshot`] — the warm-start path: no closure
    /// fixpoint, no index builds, no statistics folding, and the plan cache
    /// starts hot.
    ///
    /// # Errors
    /// [`LoadError::Io`] if the file cannot be read, otherwise as
    /// [`QueryService::from_snapshot_bytes`].
    pub fn warm_start(
        path: impl AsRef<std::path::Path>,
        level: ValidationLevel,
        config: ServiceConfig,
    ) -> Result<Self, LoadError> {
        let bytes = std::fs::read(path)?;
        Self::from_snapshot_bytes(&bytes, level, config)
    }

    /// Counter snapshot for monitoring and the bench harness. Safe to call
    /// mid-flight: see [`ServiceStats`] for the consistency guarantees.
    pub fn stats(&self) -> ServiceStats {
        let cache = self.cache.stats();
        ServiceStats {
            // ordering: monotone display counter; the `accepted ==
            // hits + misses` snapshot invariant rides on the cache's
            // Release/Acquire lookups-hits pair, read in `cache` above.
            requests: self.requests.load(Ordering::Relaxed),
            accepted: cache.lookups,
            optimizations: self.optimizations.load(Ordering::Relaxed), // ordering: display counter
            executions: self.executions.load(Ordering::Relaxed),       // ordering: display counter
            writes: self.writes.load(Ordering::Relaxed),               // ordering: display counter
            singleflight_leaders: self.sf_leaders.load(Ordering::Relaxed), // ordering: display counter
            singleflight_followers: self.sf_followers.load(Ordering::Relaxed), // ordering: display counter
            batch_groups: self.batch_groups.load(Ordering::Relaxed), // ordering: display counter
            batch_size: self.batch_size.load(Ordering::Relaxed),     // ordering: display counter
            epoch: self.epoch(),
            data_epoch: self.data_epoch(),
            cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_workload::{paper_scenario, DbSize};

    fn service() -> (QueryService, Vec<Query>) {
        let s = paper_scenario(DbSize::Db1, 42);
        (QueryService::new(Arc::new(s.store), Arc::new(s.db)), s.queries)
    }

    #[test]
    fn service_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<QueryService>();
        check::<PreparedQuery>();
        check::<ServiceResponse>();
    }

    #[test]
    fn repeated_query_hits_the_cache_and_matches() {
        let (service, queries) = service();
        let cold = service.run(&queries[0]).unwrap();
        let warm = service.run(&queries[0]).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert!(cold.results.same_multiset(&warm.results));
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.optimizations, 1);
        assert_eq!(stats.executions, 1, "second request must reuse the memoized results");
        assert_eq!(stats.cache.hits, 1);
    }

    #[test]
    fn spelling_variants_share_one_entry() {
        let (service, queries) = service();
        let mut shuffled = queries[0].clone();
        shuffled.selective_predicates.reverse();
        shuffled.projections.reverse();
        shuffled.classes.reverse();
        let a = service.run(&queries[0]).unwrap();
        let b = service.run(&shuffled).unwrap();
        assert!(b.cache_hit, "a reordered spelling must hit the same entry");
        assert!(a.results.same_multiset(&b.results));
    }

    #[test]
    fn prepared_queries_reuse_one_plan() {
        let (service, queries) = service();
        let prepared = service.prepare(&queries[1]).unwrap();
        let again = service.prepare(&queries[1]).unwrap();
        if let (Some(p), Some(q)) = (prepared.plan(), again.plan()) {
            assert!(Arc::ptr_eq(p, q), "both handles must share the physical plan");
        }
        let r1 = service.execute_prepared(&prepared).unwrap();
        let r2 = service.execute_prepared(&again).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2), "memoized results are shared");
    }

    /// Some constraint of `service`'s store whose class set overlaps
    /// `query`'s (duplicating it is semantics-preserving, so answers must
    /// not move while the rewrite is re-derived).
    fn overlapping_dup(service: &QueryService, query: &Query) -> sqo_constraints::HornConstraint {
        let store = service.store();
        let found = store
            .constraints()
            .find(|(_, c)| c.classes.iter().any(|cl| query.classes.contains(cl)))
            .map(|(_, c)| c.clone());
        found.expect("some constraint touches the query's classes")
    }

    #[test]
    fn epoch_bump_invalidates_but_answers_stay_equal() {
        let (service, queries) = service();
        let before = service.run(&queries[2]).unwrap();
        let e0 = service.epoch();
        let dup = overlapping_dup(&service, &queries[2]);
        let e1 = service.add_constraint(dup);
        assert!(e1 > e0);
        assert_eq!(service.epoch(), e1);
        let after = service.run(&queries[2]).unwrap();
        assert!(!after.cache_hit, "an overlapping constraint must invalidate the cached rewrite");
        assert_eq!(after.epoch, e1);
        assert!(before.results.same_multiset(&after.results));
        assert!(service.stats().cache.invalidations >= 1);
    }

    #[test]
    fn non_overlapping_constraint_insert_preserves_entries() {
        let (service, queries) = service();
        let cached = service.run(&queries[0]).unwrap();
        // A constraint scoped on a class the query never mentions: build it
        // on any class outside the query's class set.
        let catalog = Arc::clone(service.store().catalog());
        let outside = catalog
            .classes()
            .map(|(cid, _)| cid)
            .find(|cid| !queries[0].canonical().classes.contains(cid))
            .expect("five classes, queries span fewer");
        let name = catalog.class_name(outside).to_string();
        let constraint = sqo_constraints::ConstraintBuilder::new(&catalog, "outside")
            .when(&format!("{name}.a2"), sqo_query::CompOp::Eq, -1_000_000i64)
            .then(&format!("{name}.b2"), sqo_query::CompOp::Eq, 0i64)
            .build()
            .unwrap();
        let e1 = service.add_constraint(constraint);
        let again = service.run(&queries[0]).unwrap();
        assert!(
            again.cache_hit,
            "a disjoint constraint must not orphan the entry: {:?}",
            service.stats()
        );
        assert_eq!(again.epoch, e1, "revalidated entries serve under the new epoch");
        assert!(again.results.same_multiset(&cached.results));
        let stats = service.stats();
        assert!(stats.cache.revalidations >= 1, "{stats:?}");
        assert_eq!(stats.cache.invalidations, 0, "{stats:?}");
        assert_eq!(stats.optimizations, 1, "no re-optimization happened");
    }

    #[test]
    fn data_writes_keep_plans_but_expire_result_memos() {
        let (service, queries) = service();
        let before = service.run(&queries[0]).unwrap();
        assert_eq!(before.data_epoch, 0);
        let stats0 = service.stats();
        assert_eq!((stats0.executions, stats0.writes), (1, 0));

        // Duplicate a cargo instance with its links (constraint- and
        // integrity-preserving); the recomputed answer is cross-checked
        // against a fresh uncached reference below.
        let db = service.db();
        let catalog = db.catalog();
        let cargo = catalog.class_id("cargo").unwrap();
        let supplies = catalog.rel_id("supplies").unwrap();
        let collects = catalog.rel_id("collects").unwrap();
        let src = sqo_storage::ObjectId(0);
        let outcome = service
            .write(&[DataWrite::Insert {
                class: cargo,
                tuple: db.tuple(cargo, src).unwrap().to_vec(),
                links: vec![
                    (supplies, db.traverse(supplies, cargo, src).unwrap()[0]),
                    (collects, db.traverse(collects, cargo, src).unwrap()[0]),
                ],
            }])
            .unwrap();
        assert_eq!(outcome.epoch, 1);

        let after = service.run(&queries[0]).unwrap();
        assert!(after.cache_hit, "plans survive pure data writes");
        assert_eq!(after.data_epoch, 1);
        let stats1 = service.stats();
        assert_eq!(stats1.writes, 1);
        assert_eq!(stats1.data_epoch, 1);
        assert_eq!(stats1.optimizations, 1, "no re-optimization after a data write");
        assert_eq!(stats1.executions, 2, "the memoized result must be recomputed");

        // The recomputed answer matches a fresh uncached reference on the
        // same shared database.
        let reference = QueryService::with_versioned_db(
            service.store(),
            Arc::clone(service.versioned_db()),
            ServiceConfig { bypass_cache: true, ..Default::default() },
        );
        let fresh = reference.run(&queries[0]).unwrap();
        assert!(after.results.same_multiset(&fresh.results));

        // Re-running without further writes serves the (re)memoized copy.
        let warm = service.run(&queries[0]).unwrap();
        assert_eq!(service.stats().executions, 2, "memo re-armed at the new epoch");
        assert!(warm.results.same_multiset(&after.results));
    }

    #[test]
    fn bypass_cache_always_misses() {
        let s = paper_scenario(DbSize::Db1, 42);
        let service = QueryService::with_config(
            Arc::new(s.store),
            Arc::new(s.db),
            ServiceConfig { bypass_cache: true, ..Default::default() },
        );
        for _ in 0..3 {
            let r = service.run(&s.queries[0]).unwrap();
            assert!(!r.cache_hit);
        }
        let stats = service.stats();
        assert_eq!(stats.optimizations, 3);
        assert_eq!(stats.cache.entries, 0);
    }

    #[test]
    fn run_batch_matches_sequential_answers() {
        let (service, queries) = service();
        let batch: Vec<Query> = queries.iter().cycle().take(24).cloned().collect();
        let concurrent = service.run_batch(&batch, 4);
        for (q, r) in batch.iter().zip(&concurrent) {
            let solo = service.run(q).unwrap();
            assert!(r.as_ref().unwrap().results.same_multiset(&solo.results));
        }
    }

    #[test]
    fn run_batch_survives_a_panicking_worker() {
        let (service, queries) = service();
        let batch: Vec<Query> = queries.iter().cycle().take(12).cloned().collect();
        let poisoned = &batch[5];
        let out = service.run_batch_with(&batch, 3, |q| {
            if std::ptr::eq(q, poisoned) {
                panic!("injected worker panic");
            }
            service.run(q)
        });
        assert_eq!(out.len(), batch.len());
        assert!(matches!(out[5], Err(ServiceError::WorkerPanicked)));
        for (i, r) in out.iter().enumerate() {
            if i != 5 {
                assert!(r.is_ok(), "request {i} must survive the poisoned worker");
            }
        }
    }

    #[test]
    fn try_run_leads_hits_and_follows() {
        let (service, queries) = service();
        // Cold: the first try_run is a leader that owes a completion.
        let TryRun::Leader(guard) = service.try_run(&queries[0]).unwrap() else {
            panic!("cold try_run must lead")
        };
        // While the flight is open, a duplicate becomes a follower.
        let TryRun::Follower(waiter) = service.try_run(&queries[0]).unwrap() else {
            panic!("duplicate of an open flight must follow")
        };
        let led = service.complete_miss(guard).unwrap();
        let followed = waiter.wait().unwrap();
        assert!(led.results.same_multiset(&followed.results));
        assert_eq!(followed.data_epoch, led.data_epoch);
        // Published: the next try_run is a plain cache hit.
        let TryRun::Done(hit) = service.try_run(&queries[0]).unwrap() else {
            panic!("published entry must hit")
        };
        assert!(hit.cache_hit);
        let stats = service.stats();
        assert_eq!(stats.optimizations, 1, "one optimization serves leader + follower + hit");
        assert_eq!(stats.singleflight_leaders, 1);
        assert_eq!(stats.singleflight_followers, 1);
        assert_eq!(stats.accepted, stats.cache.hits + stats.cache.misses);
    }

    #[test]
    fn dropped_leader_aborts_and_a_retry_recovers() {
        let (service, queries) = service();
        let TryRun::Leader(guard) = service.try_run(&queries[0]).unwrap() else { panic!() };
        let TryRun::Follower(waiter) = service.try_run(&queries[0]).unwrap() else { panic!() };
        drop(guard);
        assert!(matches!(waiter.wait(), Err(FlightError::Aborted)));
        // The retry finds the key free and leads; completion publishes.
        let TryRun::Leader(guard) = service.try_run(&queries[0]).unwrap() else {
            panic!("retry after abort must lead")
        };
        let response = service.complete_miss(guard).unwrap();
        assert!(!response.cache_hit);
        assert!(matches!(service.try_run(&queries[0]).unwrap(), TryRun::Done(r) if r.cache_hit));
    }

    #[test]
    fn grouped_run_batch_matches_ungrouped_and_shares_executions() {
        let s = paper_scenario(DbSize::Db1, 42);
        let store = Arc::new(s.store);
        let db = Arc::new(s.db);
        // Result memoization off so the executions counter counts real
        // plan executions — the quantity grouping is meant to shrink.
        let grouped = QueryService::with_config(
            Arc::clone(&store),
            Arc::clone(&db),
            ServiceConfig { cache_results: false, batch_window: 8, ..Default::default() },
        );
        let reference = QueryService::with_config(
            store,
            db,
            ServiceConfig { cache_results: false, ..Default::default() },
        );
        // Duplicate-heavy stream: 16 copies of one query.
        let batch: Vec<Query> = std::iter::repeat_with(|| s.queries[0].clone()).take(16).collect();
        // One worker: the two groups run in order, so the second is
        // deterministically a plan-cache hit.
        let out = grouped.run_batch(&batch, 1);
        let baseline = reference.run_batch(&batch, 2);
        for (r, b) in out.iter().zip(&baseline) {
            let (r, b) = (r.as_ref().unwrap(), b.as_ref().unwrap());
            assert!(r.results.same_multiset(&b.results));
            assert_eq!(r.data_epoch, b.data_epoch);
        }
        let stats = grouped.stats();
        assert_eq!(stats.requests, 16);
        assert_eq!(stats.batch_groups, 2, "two gather windows => two groups: {stats:?}");
        assert_eq!(stats.batch_size, 16, "every request was answered through a group");
        assert_eq!(stats.executions, 2, "one shared execution per group");
        assert_eq!(stats.optimizations, 1, "the second group hits the plan cache");
        assert_eq!(reference.stats().executions, 16, "ungrouped re-executes per request");
        // Group answers are Arc-fanned: members of one group share storage.
        let first = out[0].as_ref().unwrap();
        assert!(Arc::ptr_eq(&first.results, &out[7].as_ref().unwrap().results));
        assert!(!first.cache_hit, "first group built the entry");
        assert!(out[15].as_ref().unwrap().cache_hit, "second group hit it");
    }

    #[test]
    fn grouped_run_batch_mixes_distinct_queries_per_window() {
        let (_, queries) = service();
        let s = paper_scenario(DbSize::Db1, 42);
        let service = QueryService::with_config(
            Arc::new(s.store),
            Arc::new(s.db),
            ServiceConfig { cache_results: false, batch_window: 4, ..Default::default() },
        );
        // Window of 4 holding two distinct queries => two groups per window.
        let batch: Vec<Query> =
            [0usize, 0, 1, 1, 0, 1, 0, 1].into_iter().map(|i| queries[i].clone()).collect();
        let out = service.run_batch(&batch, 1);
        for (q, r) in batch.iter().zip(&out) {
            let solo = service.run(q).unwrap();
            assert!(r.as_ref().unwrap().results.same_multiset(&solo.results));
        }
        let stats = service.stats();
        assert_eq!(stats.batch_groups, 4, "{stats:?}");
        assert_eq!(stats.batch_size, 8, "{stats:?}");
    }

    #[test]
    fn warm_hit_flight_gathers_duplicates() {
        let s = paper_scenario(DbSize::Db1, 42);
        let service = QueryService::with_config(
            Arc::new(s.store),
            Arc::new(s.db),
            ServiceConfig { batch_window: 4, ..Default::default() },
        );
        let query = &s.queries[0];
        let _ = service.run(query).unwrap(); // warm the plan cache
        let canonical = query.canonical();
        let key = FlightKey {
            fingerprint: canonical.fingerprint_canonical(),
            version: service.store().version(),
            data_epoch: service.versioned_db().data_epoch(),
        };
        // Pin the hit's coordinates open, as if another thread's hit leader
        // were mid-execution: a concurrent warm duplicate must *follow*.
        let Registered::Leader(flight) = service.cache.flights().register(key, &canonical) else {
            panic!("manual registration must lead")
        };
        let TryRun::Follower(waiter) = service.try_run(query).unwrap() else {
            panic!("warm duplicate of an open hit flight must follow")
        };
        // The pinned leader aborts; the follower retries per protocol.
        let guard = MissGuard::new(
            key,
            canonical,
            service.store(),
            Arc::clone(service.cache.flights()),
            flight,
        );
        drop(guard);
        assert!(matches!(waiter.wait(), Err(FlightError::Aborted)));
        // Uncontended retry: the hit leads its own flight, executes inline,
        // and answers synchronously.
        let TryRun::Done(hit) = service.try_run(query).unwrap() else {
            panic!("uncontended warm hit must answer synchronously")
        };
        assert!(hit.cache_hit);
        let stats = service.stats();
        assert_eq!(stats.batch_groups, 1, "{stats:?}");
        assert_eq!(stats.batch_size, 2, "one follower + one leader: {stats:?}");
        assert_eq!(stats.singleflight_leaders, 0, "hit flights are not miss dedup");
        assert_eq!(stats.singleflight_followers, 0, "{stats:?}");
    }

    #[test]
    fn statistics_change_invalidates() {
        let (service, queries) = service();
        let _ = service.run(&queries[0]).unwrap();
        service.note_statistics_change();
        assert_eq!(service.stats().cache.entries, 0, "purged eagerly");
        let r = service.run(&queries[0]).unwrap();
        assert!(!r.cache_hit);
    }
}
