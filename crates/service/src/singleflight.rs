//! Singleflight miss deduplication: concurrent cache misses on the same
//! `(fingerprint, store version, data epoch)` coordinates share one
//! optimization instead of paying for N.
//!
//! The first request to miss registers itself as the **leader** and
//! receives a [`MissGuard`]; it runs the full optimize+plan+execute
//! pipeline exactly once ([`crate::QueryService::complete_miss`]) and
//! publishes the answer both into the plan cache and into the flight,
//! where every **follower** that registered in the meantime picks it up.
//! Followers never park an OS thread unless they want to: a follower polls
//! its [`MissWaiter`] with a [`std::task::Waker`] (how the `sqo-frontend`
//! reactor multiplexes thousands of waiting logical clients over a fixed
//! worker pool), or calls [`MissWaiter::wait`] to block the calling thread
//! when it does own one.
//!
//! A leader that drops its guard without completing — a panic in the
//! optimizer, a cancelled task — **aborts** the flight: followers observe
//! [`FlightError::Aborted`] and re-register, one of them becoming the new
//! leader, so a poisoned leader never wedges the requests queued behind
//! it.
//!
//! The flight key deliberately includes the **data epoch**: the leader's
//! answer is a fully executed [`ServiceResponse`], and a result set is
//! only shareable with followers that arrived under the same data-epoch
//! coordinates (the plan itself is additionally published to the plan
//! cache under the store version, where it outlives the flight).

use std::collections::HashMap;
use std::sync::Arc;
use std::task::{Wake, Waker};

use parking_lot::Mutex;
use sqo_constraints::{ConstraintStore, StoreVersion};
use sqo_query::{Query, QueryFingerprint};

use crate::service::{ServiceError, ServiceResponse};

/// Identity of one in-flight miss: the full validity coordinates of the
/// answer the leader will publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlightKey {
    /// Canonical fingerprint of the missed query.
    pub fingerprint: QueryFingerprint,
    /// Constraint-store version the flight's rewrite is derived under.
    pub version: StoreVersion,
    /// Data epoch observed at registration (results computed by the
    /// leader are shared at-or-after this epoch).
    pub data_epoch: u64,
}

/// Why a follower's flight resolved without an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightError {
    /// The leader ran the pipeline and it failed; the error is shared
    /// verbatim with every follower (re-running would fail identically).
    Failed(ServiceError),
    /// The leader dropped its [`MissGuard`] without completing (panic or
    /// cancellation). The follower should re-register — the next
    /// registrant becomes the new leader.
    Aborted,
}

/// What a follower receives when its flight resolves.
pub type FlightResult = Result<ServiceResponse, FlightError>;

#[derive(Debug)]
struct FlightState {
    outcome: Option<FlightResult>,
    wakers: Vec<Waker>,
}

/// One in-flight miss: the leader publishes here, followers wait here.
#[derive(Debug)]
pub(crate) struct Flight {
    /// The canonical query, kept to disarm 64-bit fingerprint collisions
    /// exactly like the plan cache does.
    canonical: Query,
    state: Mutex<FlightState>,
}

impl Flight {
    fn new(canonical: Query) -> Self {
        Self { canonical, state: Mutex::new(FlightState { outcome: None, wakers: Vec::new() }) }
    }

    /// Publishes the outcome and wakes every registered waiter. Idempotent
    /// (the first resolution wins).
    fn resolve(&self, outcome: FlightResult) {
        let wakers = {
            let mut state = self.state.lock();
            if state.outcome.is_some() {
                return;
            }
            state.outcome = Some(outcome);
            std::mem::take(&mut state.wakers)
        };
        for waker in wakers {
            waker.wake();
        }
    }

    /// The resolved outcome, or `None` with `waker` registered for the
    /// resolution. Checking the outcome and registering the waker happen
    /// under one lock, so a resolution can never slip between them.
    fn poll(&self, waker: &Waker) -> Option<FlightResult> {
        let mut state = self.state.lock();
        if let Some(outcome) = &state.outcome {
            return Some(outcome.clone());
        }
        if !state.wakers.iter().any(|w| w.will_wake(waker)) {
            state.wakers.push(waker.clone());
        }
        None
    }
}

/// How a [`FlightTable::register`] call landed.
#[derive(Debug)]
pub(crate) enum Registered {
    /// First registrant on these coordinates: run the miss pipeline.
    Leader(Arc<Flight>),
    /// A leader is already in flight: wait for its answer.
    Follower(Arc<Flight>),
    /// Same fingerprint, different canonical query (a 2⁻⁶⁴ hash
    /// collision): do not share; run the undeduplicated path.
    Collision,
}

/// The in-flight miss registry, shared by the plan cache and every
/// [`MissGuard`]/[`MissWaiter`] handed out from it.
#[derive(Debug, Default)]
pub(crate) struct FlightTable {
    flights: Mutex<HashMap<FlightKey, Arc<Flight>>>,
}

impl FlightTable {
    /// Registers interest in `key`: the first caller becomes the leader,
    /// everyone after it (until the flight resolves) a follower.
    pub(crate) fn register(&self, key: FlightKey, canonical: &Query) -> Registered {
        let mut flights = self.flights.lock();
        match flights.get(&key) {
            Some(flight) if flight.canonical == *canonical => {
                Registered::Follower(Arc::clone(flight))
            }
            Some(_) => Registered::Collision,
            None => {
                let flight = Arc::new(Flight::new(canonical.clone()));
                flights.insert(key, Arc::clone(&flight));
                Registered::Leader(flight)
            }
        }
    }

    /// Removes `flight` from the table (only if it is still the one
    /// registered — a successor flight on the same key is left alone) and
    /// resolves it. New registrants on the key start a fresh flight.
    fn retire(&self, key: FlightKey, flight: &Arc<Flight>, outcome: FlightResult) {
        {
            let mut flights = self.flights.lock();
            if flights.get(&key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
                flights.remove(&key);
            }
        }
        flight.resolve(outcome);
    }

    /// Number of flights currently in the table (diagnostics).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.flights.lock().len()
    }
}

/// The leader's obligation: a registered miss whose optimization this
/// request must run (via [`crate::QueryService::complete_miss`]).
///
/// Dropping the guard without completing aborts the flight — followers
/// are woken with [`FlightError::Aborted`] and re-register, so a leader
/// that panics mid-optimization never strands them.
#[derive(Debug)]
pub struct MissGuard {
    key: FlightKey,
    canonical: Query,
    /// The store captured at registration: the leader derives under
    /// exactly the version its flight (and cache stamp) names, even if
    /// the service's store is swapped mid-flight.
    store: Arc<ConstraintStore>,
    table: Arc<FlightTable>,
    flight: Arc<Flight>,
    completed: bool,
}

impl MissGuard {
    pub(crate) fn new(
        key: FlightKey,
        canonical: Query,
        store: Arc<ConstraintStore>,
        table: Arc<FlightTable>,
        flight: Arc<Flight>,
    ) -> Self {
        Self { key, canonical, store, table, flight, completed: false }
    }

    /// The flight's coordinates.
    pub fn key(&self) -> FlightKey {
        self.key
    }

    /// The canonical query the leader must optimize.
    pub fn canonical(&self) -> &Query {
        &self.canonical
    }

    pub(crate) fn store(&self) -> &Arc<ConstraintStore> {
        &self.store
    }

    /// Retires the flight with `outcome`, waking every follower.
    pub(crate) fn finish(mut self, outcome: FlightResult) {
        self.completed = true;
        self.table.retire(self.key, &self.flight, outcome);
    }
}

impl Drop for MissGuard {
    fn drop(&mut self) {
        if !self.completed {
            self.table.retire(self.key, &self.flight, Err(FlightError::Aborted));
        }
    }
}

/// A follower's handle on an in-flight miss.
#[derive(Debug)]
pub struct MissWaiter {
    flight: Arc<Flight>,
}

impl MissWaiter {
    pub(crate) fn new(flight: Arc<Flight>) -> Self {
        Self { flight }
    }

    /// Non-blocking: the outcome if the flight has resolved, otherwise
    /// `None` with `waker` registered to fire on resolution. This is the
    /// reactor integration point — a waiting task costs no thread.
    pub fn poll(&self, waker: &Waker) -> Option<FlightResult> {
        self.flight.poll(waker)
    }

    /// Blocks the calling thread (park/unpark, no spin) until the flight
    /// resolves — the synchronous counterpart of [`MissWaiter::poll`].
    pub fn wait(&self) -> FlightResult {
        struct Unpark(std::thread::Thread);
        impl Wake for Unpark {
            fn wake(self: Arc<Self>) {
                self.0.unpark();
            }
        }
        let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
        loop {
            if let Some(outcome) = self.flight.poll(&waker) {
                return outcome;
            }
            std::thread::park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_exec::ResultSet;

    fn key(fp: u64) -> FlightKey {
        FlightKey {
            fingerprint: QueryFingerprint(fp),
            version: StoreVersion { generation: 1, epoch: 0 },
            data_epoch: 0,
        }
    }

    fn response() -> ServiceResponse {
        ServiceResponse {
            results: Arc::new(ResultSet::new(vec![])),
            cache_hit: false,
            epoch: 0,
            data_epoch: 0,
        }
    }

    #[test]
    fn first_registrant_leads_rest_follow() {
        let table = Arc::new(FlightTable::default());
        let q = Query::new();
        let Registered::Leader(flight) = table.register(key(1), &q) else {
            panic!("first registrant must lead")
        };
        assert!(matches!(table.register(key(1), &q), Registered::Follower(_)));
        assert!(matches!(table.register(key(2), &q), Registered::Leader(_)));
        assert_eq!(table.len(), 2);
        table.retire(key(1), &flight, Ok(response()));
        assert_eq!(table.len(), 1);
        // After retirement the key is free again: a new leader, not a
        // follower of the resolved flight.
        assert!(matches!(table.register(key(1), &q), Registered::Leader(_)));
    }

    #[test]
    fn fingerprint_collisions_do_not_share() {
        let table = FlightTable::default();
        let q = Query::new();
        let mut other = Query::new();
        other.classes.push(sqo_catalog::ClassId(0));
        let _leader = table.register(key(7), &q);
        assert!(matches!(table.register(key(7), &other), Registered::Collision));
    }

    #[test]
    fn followers_wake_on_resolution_and_dropped_guards_abort() {
        let table = Arc::new(FlightTable::default());
        let q = Query::new();
        let Registered::Leader(flight) = table.register(key(1), &q) else { panic!() };
        let Registered::Follower(joined) = table.register(key(1), &q) else { panic!() };
        let waiter = MissWaiter::new(joined);
        let resolver = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.retire(key(1), &flight, Ok(response())))
        };
        assert!(waiter.wait().is_ok());
        resolver.join().unwrap();

        // A guard dropped without completion aborts its flight.
        let Registered::Leader(flight) = table.register(key(3), &q) else { panic!() };
        let Registered::Follower(joined) = table.register(key(3), &q) else { panic!() };
        let guard =
            MissGuard::new(key(3), q.clone(), Arc::new(test_store()), Arc::clone(&table), flight);
        drop(guard);
        assert!(matches!(MissWaiter::new(joined).wait(), Err(FlightError::Aborted)));
        assert_eq!(table.len(), 0, "aborted flights leave the table");
    }

    fn test_store() -> ConstraintStore {
        let catalog = Arc::new(sqo_catalog::example::figure21().unwrap());
        ConstraintStore::build(
            Arc::clone(&catalog),
            vec![],
            sqo_constraints::StoreOptions::paper_defaults(),
        )
        .unwrap()
    }
}
