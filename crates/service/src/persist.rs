//! Serving-layer snapshot codecs: the CONSTRAINTS and PLANSEEDS sections.
//!
//! The database sections are owned by `sqo-storage`; this module persists
//! what the serving layer adds on top — the compiled constraint store's
//! identity and contents, and a warm seed for the plan cache. The byte
//! layouts are specified normatively in `docs/FORMAT.md`; the validation
//! levels in `docs/VALIDATION.md`.

#![deny(missing_docs)]

use std::sync::Arc;

use sqo_catalog::{AttrRef, Catalog, ClassId, RelId};
use sqo_constraints::{
    transitive_closure, AssignmentPolicy, ClosureOptions, ConstraintStore, HornConstraint, Origin,
    StoreOptions, StoreVersion,
};
use sqo_exec::{read_plan, write_plan, AccessPath, ClassAccess, PhysicalPlan};
use sqo_query::{Predicate, QueryFingerprint};
use sqo_snapshot::{
    read_attr_ref, read_predicate, read_query, write_attr_ref, write_predicate, write_query,
    ByteReader, ByteWriter, LoadError, ValidationLevel,
};

use crate::cache::CacheEntry;

/// Everything the CONSTRAINTS section carries: the store's semantic
/// identity and the exact constraint list it compiled, sufficient to
/// rebuild an equivalent [`ConstraintStore`] without re-running the
/// closure fixpoint.
#[derive(Debug, Clone)]
pub struct ConstraintSeed {
    /// Semantic epoch of the store at save time (restored monotonically via
    /// [`ConstraintStore::raise_epoch_to`]).
    pub epoch: u64,
    /// Generation of the saved store — informational only: generations are
    /// process-local, so a warm-started store always gets a fresh one.
    pub saved_generation: u64,
    /// Group-assignment policy the store was built with.
    pub policy: AssignmentPolicy,
    /// Closure limits the store was built with (persisted so an Audit-level
    /// re-derivation reproduces the same truncation behaviour).
    pub closure: ClosureOptions,
    /// Number of closure-derived constraints in `constraints`.
    pub derived_count: usize,
    /// Whether a closure limit stopped the fixpoint before convergence.
    pub closure_truncated: bool,
    /// The full constraint list, declared and derived, in store order.
    pub constraints: Vec<HornConstraint>,
}

fn origin_tag(origin: Origin) -> u8 {
    match origin {
        Origin::Declared => 0,
        Origin::Derived => 1,
        Origin::Dynamic => 2,
    }
}

fn policy_tag(policy: AssignmentPolicy) -> u8 {
    match policy {
        AssignmentPolicy::Arbitrary => 0,
        AssignmentPolicy::LeastFrequentlyAccessed => 1,
        AssignmentPolicy::Balanced => 2,
    }
}

/// Encodes a [`ConstraintStore`] as the CONSTRAINTS section payload.
pub fn encode_constraints(store: &ConstraintStore) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(store.epoch());
    w.u64(store.generation());
    w.u8(policy_tag(store.policy()));
    let closure = store.closure_options();
    w.u64(closure.max_derived as u64);
    w.u64(closure.max_rounds as u64);
    w.u64(store.derived_count as u64);
    w.u8(u8::from(store.closure_truncated));
    w.u32(store.len() as u32);
    for (_, c) in store.constraints() {
        w.str(&c.name);
        w.u32(c.antecedents.len() as u32);
        for p in &c.antecedents {
            write_predicate(&mut w, p);
        }
        w.u32(c.relationships.len() as u32);
        for r in &c.relationships {
            w.u32(r.0);
        }
        write_predicate(&mut w, &c.consequent);
        w.u32(c.classes.len() as u32);
        for cl in &c.classes {
            w.u32(cl.0);
        }
        w.u8(origin_tag(c.origin));
    }
    w.finish()
}

/// A predicate's attribute references must resolve in `catalog`, and a
/// selection's literal must carry the attribute's declared type.
fn strict_check_predicate(
    catalog: &Catalog,
    p: &Predicate,
    r: &ByteReader<'_>,
) -> Result<(), LoadError> {
    let check_attr = |a: AttrRef| -> Result<(), LoadError> {
        catalog.attr(a).map(|_| ()).map_err(|e| LoadError::DanglingReference {
            section: r.section(),
            detail: format!("attribute reference does not resolve: {e}"),
        })
    };
    match p {
        Predicate::Sel(s) => {
            check_attr(s.attr)?;
            let declared = catalog.attr(s.attr).expect("checked above").ty;
            if s.value.data_type() != declared {
                return Err(LoadError::Malformed {
                    section: r.section(),
                    detail: format!(
                        "selection literal type {:?} does not match declared {declared:?}",
                        s.value.data_type()
                    ),
                });
            }
            Ok(())
        }
        Predicate::Join(j) => {
            check_attr(j.left)?;
            check_attr(j.right)
        }
    }
}

/// Decodes the CONSTRAINTS section payload.
///
/// Standard checks structure only; Strict additionally resolves every
/// class, relationship and attribute id against `catalog`, requires the
/// per-constraint class list to be strictly ascending, and cross-checks
/// `derived_count` against the actual number of derived constraints.
///
/// # Errors
/// [`LoadError::Malformed`] on structural damage, and at Strict
/// [`LoadError::DanglingReference`] / [`LoadError::UnsortedPosting`] for
/// id-space and ordering violations.
pub fn decode_constraints(
    payload: &[u8],
    catalog: &Catalog,
    level: ValidationLevel,
) -> Result<ConstraintSeed, LoadError> {
    let mut r = ByteReader::new(payload, "CONSTRAINTS");
    let epoch = r.u64()?;
    let saved_generation = r.u64()?;
    let policy = match r.u8()? {
        0 => AssignmentPolicy::Arbitrary,
        1 => AssignmentPolicy::LeastFrequentlyAccessed,
        2 => AssignmentPolicy::Balanced,
        t => return Err(r.malformed(format!("unknown assignment-policy tag {t}"))),
    };
    let closure = ClosureOptions { max_derived: r.u64()? as usize, max_rounds: r.u64()? as usize };
    let derived_count = r.u64()? as usize;
    let closure_truncated = match r.u8()? {
        0 => false,
        1 => true,
        t => return Err(r.malformed(format!("closure_truncated must be 0/1, got {t}"))),
    };
    let mut constraints = Vec::new();
    for _ in 0..r.count()? {
        let name = r.str()?;
        let mut antecedents = Vec::new();
        for _ in 0..r.count()? {
            let p = read_predicate(&mut r)?;
            if level.at_least_strict() {
                strict_check_predicate(catalog, &p, &r)?;
            }
            antecedents.push(p);
        }
        let mut relationships = Vec::new();
        for _ in 0..r.count()? {
            let rel = RelId(r.u32()?);
            if level.at_least_strict() && catalog.relationship(rel).is_err() {
                return Err(LoadError::DanglingReference {
                    section: "CONSTRAINTS",
                    detail: format!("constraint {name:?} references unknown {rel:?}"),
                });
            }
            relationships.push(rel);
        }
        let consequent = read_predicate(&mut r)?;
        if level.at_least_strict() {
            strict_check_predicate(catalog, &consequent, &r)?;
        }
        let mut classes = Vec::new();
        for _ in 0..r.count()? {
            let class = ClassId(r.u32()?);
            if level.at_least_strict() {
                if catalog.class(class).is_err() {
                    return Err(LoadError::DanglingReference {
                        section: "CONSTRAINTS",
                        detail: format!("constraint {name:?} references unknown {class:?}"),
                    });
                }
                if classes.last().is_some_and(|prev| *prev >= class) {
                    return Err(LoadError::UnsortedPosting {
                        section: "CONSTRAINTS",
                        detail: format!("constraint {name:?} class list is not strictly ascending"),
                    });
                }
            }
            classes.push(class);
        }
        let origin = match r.u8()? {
            0 => Origin::Declared,
            1 => Origin::Derived,
            2 => Origin::Dynamic,
            t => return Err(r.malformed(format!("unknown origin tag {t}"))),
        };
        constraints.push(HornConstraint {
            name,
            antecedents,
            relationships,
            consequent,
            classes,
            origin,
        });
    }
    r.expect_exhausted()?;
    if level.at_least_strict() {
        let actual = constraints.iter().filter(|c| c.origin == Origin::Derived).count();
        if actual != derived_count {
            return Err(LoadError::Malformed {
                section: "CONSTRAINTS",
                detail: format!(
                    "derived_count says {derived_count} but {actual} constraints are Derived"
                ),
            });
        }
    }
    Ok(ConstraintSeed {
        epoch,
        saved_generation,
        policy,
        closure,
        derived_count,
        closure_truncated,
        constraints,
    })
}

/// Audit-level cross-check: re-runs the closure fixpoint over the seed's
/// non-derived constraints under the persisted [`ClosureOptions`] and
/// requires every persisted derived constraint to be re-derivable. When
/// the original closure converged (not truncated) and no Dynamic
/// constraints muddy the picture, the re-derivation must match exactly.
///
/// # Errors
/// [`LoadError::AuditMismatch`] when the persisted derived set is not a
/// subset of (or, under convergence, not equal to) the re-derived set;
/// [`LoadError::Malformed`] if the closure itself rejects the inputs.
pub fn audit_constraints(seed: &ConstraintSeed, catalog: &Catalog) -> Result<(), LoadError> {
    let base: Vec<HornConstraint> =
        seed.constraints.iter().filter(|c| c.origin != Origin::Derived).cloned().collect();
    let has_dynamic = base.iter().any(|c| c.origin == Origin::Dynamic);
    let rederived =
        transitive_closure(catalog, base, seed.closure).map_err(|e| LoadError::Malformed {
            section: "CONSTRAINTS",
            detail: format!("closure re-derivation rejected the constraint set: {e}"),
        })?;
    let fresh: Vec<&HornConstraint> =
        rederived.constraints.iter().filter(|c| c.origin == Origin::Derived).collect();
    for c in seed.constraints.iter().filter(|c| c.origin == Origin::Derived) {
        if !fresh.iter().any(|f| {
            f.antecedents == c.antecedents
                && f.relationships == c.relationships
                && f.consequent == c.consequent
                && f.classes == c.classes
        }) {
            return Err(LoadError::AuditMismatch {
                detail: format!(
                    "persisted derived constraint {:?} is not re-derivable from the declared set",
                    c.name
                ),
            });
        }
    }
    if !seed.closure_truncated && !rederived.truncated && !has_dynamic {
        let persisted = seed.derived_count;
        let fresh_count = fresh.len();
        if persisted != fresh_count {
            return Err(LoadError::AuditMismatch {
                detail: format!(
                    "converged closure re-derives {fresh_count} constraints, snapshot has \
                     {persisted}"
                ),
            });
        }
    }
    Ok(())
}

/// Rebuilds a live [`ConstraintStore`] from a decoded seed: constraints
/// are taken verbatim (`materialize_closure: false` — the derived set is
/// already in the list), the saved semantic epoch is restored monotonically
/// and the store gets a fresh process-local generation.
///
/// # Errors
/// [`LoadError::Malformed`] if store compilation rejects the constraint
/// set (e.g. a predicate no longer typechecks against the catalog).
pub fn rebuild_store(
    catalog: Arc<Catalog>,
    seed: ConstraintSeed,
) -> Result<ConstraintStore, LoadError> {
    let options =
        StoreOptions { materialize_closure: false, closure: seed.closure, policy: seed.policy };
    let mut store = ConstraintStore::build(catalog, seed.constraints, options).map_err(|e| {
        LoadError::Malformed {
            section: "CONSTRAINTS",
            detail: format!("store compilation rejected the snapshot: {e}"),
        }
    })?;
    store.derived_count = seed.derived_count;
    store.closure_truncated = seed.closure_truncated;
    store.raise_epoch_to(seed.epoch);
    Ok(store)
}

/// One persisted plan-cache seed: the cache identity plus the full entry
/// skeleton (no result memo — results are data, not optimization state).
#[derive(Debug)]
pub struct PlanSeed {
    /// Canonical fingerprint the entry is keyed by.
    pub fingerprint: QueryFingerprint,
    /// The rehydrated cache entry.
    pub entry: CacheEntry,
}

/// Encodes the PLANSEEDS section payload from a cache dump, keeping only
/// entries valid at `current` (stale entries awaiting purge are skipped —
/// persisting them would seed a warm cache with outdated rewrites).
pub fn encode_plan_seeds(
    entries: &[(QueryFingerprint, StoreVersion, Arc<CacheEntry>)],
    current: StoreVersion,
) -> Vec<u8> {
    let live: Vec<_> = entries.iter().filter(|(_, v, _)| *v == current).collect();
    let mut w = ByteWriter::new();
    w.u32(live.len() as u32);
    for (fp, _, entry) in live {
        w.u64(fp.0);
        write_query(&mut w, &entry.canonical);
        write_query(&mut w, &entry.optimized);
        match &entry.plan {
            Some(plan) => {
                w.u8(1);
                write_plan(&mut w, plan);
            }
            None => w.u8(0),
        }
        w.u8(u8::from(entry.provably_empty));
        w.u32(entry.columns.len() as u32);
        for c in &entry.columns {
            write_attr_ref(&mut w, *c);
        }
    }
    w.finish()
}

/// Every id a plan skeleton mentions must resolve in `catalog`.
fn strict_check_access(catalog: &Catalog, access: &ClassAccess) -> Result<(), LoadError> {
    let dangling = |detail: String| LoadError::DanglingReference { section: "PLANSEEDS", detail };
    catalog
        .class(access.class)
        .map_err(|e| dangling(format!("plan accesses unknown class: {e}")))?;
    if let AccessPath::Index { attr, .. } = &access.path {
        catalog.attr(*attr).map_err(|e| dangling(format!("plan indexes unknown attr: {e}")))?;
    }
    for p in &access.residual {
        catalog
            .attr(p.attr)
            .map_err(|e| dangling(format!("plan residual on unknown attr: {e}")))?;
    }
    Ok(())
}

fn strict_check_plan(catalog: &Catalog, plan: &PhysicalPlan) -> Result<(), LoadError> {
    let dangling = |detail: String| LoadError::DanglingReference { section: "PLANSEEDS", detail };
    strict_check_access(catalog, &plan.root)?;
    for step in &plan.steps {
        catalog
            .relationship(step.rel)
            .map_err(|e| dangling(format!("plan joins over unknown relationship: {e}")))?;
        catalog
            .class(step.from_class)
            .map_err(|e| dangling(format!("plan joins from unknown class: {e}")))?;
        strict_check_access(catalog, &step.access)?;
        for j in &step.join_filters {
            catalog.attr(j.left).map_err(|e| dangling(format!("join filter: {e}")))?;
            catalog.attr(j.right).map_err(|e| dangling(format!("join filter: {e}")))?;
        }
        for (rel, a, b) in &step.link_filters {
            catalog.relationship(*rel).map_err(|e| dangling(format!("link filter: {e}")))?;
            catalog.class(*a).map_err(|e| dangling(format!("link filter: {e}")))?;
            catalog.class(*b).map_err(|e| dangling(format!("link filter: {e}")))?;
        }
    }
    for p in &plan.projections {
        catalog.attr(p.attr).map_err(|e| dangling(format!("plan projects unknown attr: {e}")))?;
    }
    Ok(())
}

/// Decodes the PLANSEEDS section payload.
///
/// Standard enforces the shape invariant the executor relies on (an entry
/// is provably-empty **iff** it carries no plan — a violation would panic
/// the execution path, so it is rejected before any seed reaches the
/// cache). Strict additionally recomputes each canonical fingerprint and
/// resolves every id the queries and plan skeletons mention.
///
/// # Errors
/// [`LoadError::Malformed`] for structural damage, and at Strict
/// [`LoadError::ChecksumMismatch`]-free but fingerprint-mismatching seeds
/// report [`LoadError::Malformed`] while unresolvable ids report
/// [`LoadError::DanglingReference`].
pub fn decode_plan_seeds(
    payload: &[u8],
    catalog: &Catalog,
    level: ValidationLevel,
) -> Result<Vec<PlanSeed>, LoadError> {
    let mut r = ByteReader::new(payload, "PLANSEEDS");
    let mut seeds = Vec::new();
    for _ in 0..r.count()? {
        let fingerprint = QueryFingerprint(r.u64()?);
        let canonical = read_query(&mut r)?;
        let optimized = read_query(&mut r)?;
        let plan = match r.u8()? {
            0 => None,
            1 => Some(Arc::new(read_plan(&mut r)?)),
            t => return Err(r.malformed(format!("plan presence must be 0/1, got {t}"))),
        };
        let provably_empty = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(r.malformed(format!("provably_empty must be 0/1, got {t}"))),
        };
        if provably_empty == plan.is_some() {
            return Err(r.malformed(
                "entries must carry a plan exactly when not provably empty".to_string(),
            ));
        }
        let mut columns = Vec::new();
        for _ in 0..r.count()? {
            columns.push(read_attr_ref(&mut r)?);
        }
        if level.at_least_strict() {
            let recomputed = canonical.fingerprint_canonical();
            if recomputed != fingerprint {
                return Err(LoadError::Malformed {
                    section: "PLANSEEDS",
                    detail: format!(
                        "stored fingerprint {fingerprint} but canonical query hashes to \
                         {recomputed}"
                    ),
                });
            }
            if let Some(plan) = &plan {
                strict_check_plan(catalog, plan)?;
            }
            for c in &columns {
                catalog.attr(*c).map_err(|e| LoadError::DanglingReference {
                    section: "PLANSEEDS",
                    detail: format!("column list references unknown attr: {e}"),
                })?;
            }
        }
        seeds.push(PlanSeed {
            fingerprint,
            entry: CacheEntry::new(canonical, optimized, plan, provably_empty, columns),
        });
    }
    r.expect_exhausted()?;
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_workload::{paper_scenario, DbSize};

    #[test]
    fn constraint_store_roundtrips_at_audit() {
        let s = paper_scenario(DbSize::Db1, 7);
        let catalog = Arc::clone(s.store.catalog());
        let bytes = encode_constraints(&s.store);
        let seed = decode_constraints(&bytes, &catalog, ValidationLevel::Strict).unwrap();
        audit_constraints(&seed, &catalog).unwrap();
        assert_eq!(seed.epoch, s.store.epoch());
        assert_eq!(seed.derived_count, s.store.derived_count);
        let rebuilt = rebuild_store(catalog, seed).unwrap();
        assert_eq!(rebuilt.len(), s.store.len());
        assert_eq!(rebuilt.epoch(), s.store.epoch());
        assert_ne!(rebuilt.generation(), s.store.generation(), "fresh generation");
        for ((_, a), (_, b)) in rebuilt.constraints().zip(s.store.constraints()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tampered_derived_constraint_fails_audit() {
        let s = paper_scenario(DbSize::Db1, 7);
        let catalog = Arc::clone(s.store.catalog());
        let bytes = encode_constraints(&s.store);
        let mut seed = decode_constraints(&bytes, &catalog, ValidationLevel::Standard).unwrap();
        let victim = seed
            .constraints
            .iter_mut()
            .find(|c| c.origin == Origin::Derived)
            .expect("scenario materializes a closure");
        // Flip the consequent's operator: still well-formed, no longer derivable.
        if let Predicate::Sel(sel) = &mut victim.consequent {
            sel.op = match sel.op {
                sqo_query::CompOp::Eq => sqo_query::CompOp::Ne,
                _ => sqo_query::CompOp::Eq,
            };
        } else {
            victim.classes = vec![];
        }
        assert!(matches!(audit_constraints(&seed, &catalog), Err(LoadError::AuditMismatch { .. })));
    }

    #[test]
    fn truncated_constraints_section_is_clean_error() {
        let s = paper_scenario(DbSize::Db1, 7);
        let catalog = Arc::clone(s.store.catalog());
        let bytes = encode_constraints(&s.store);
        for cut in [0, 8, 17, 33, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_constraints(&bytes[..cut], &catalog, ValidationLevel::Standard).is_err(),
                "cut at {cut} decoded"
            );
        }
    }
}
