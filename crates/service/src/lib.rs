//! # sqo-service
//!
//! The serving layer of the `sqo` workspace: a concurrent
//! [`QueryService`] that amortizes semantic optimization across the
//! repeated queries real traffic is made of.
//!
//! The ICDE'91 pipeline underneath is a single-shot library — every
//! [`sqo_core::SemanticOptimizer::optimize`] call re-runs the whole
//! transformation fixpoint and re-plans from scratch. This crate turns it
//! into a serveable engine:
//!
//! * **Canonical fingerprints** ([`sqo_query::QueryFingerprint`]) collapse
//!   every spelling of a query — shuffled predicates, reordered class
//!   lists — onto one cache identity.
//! * **Version-validated entries**: every cache entry records the
//!   [`sqo_constraints::StoreVersion`] (store generation + epoch) its
//!   rewrite was derived under, and lookups only hit on an exact match —
//!   raw epochs are ambiguous across copy-on-write store swaps and can
//!   serve plans derived under the wrong constraints.
//! * **Two-level invalidation**: a constraint insert purges only entries
//!   whose class set overlaps the new constraint's (everything else is
//!   revalidated in place); a data write through the
//!   [`sqo_storage::VersionedDatabase`] path leaves plans cached and only
//!   expires each entry's data-epoch-gated result memo.
//! * A **sharded LRU plan cache** ([`ShardedCache`]) keeps lock hold times
//!   tiny: readers of different queries land on different
//!   `parking_lot::RwLock` shards, readers of the same hot query share a
//!   read lock.
//! * A **prepared-query API** ([`QueryService::prepare`] →
//!   [`QueryService::execute_prepared`]) re-executes one shared
//!   [`sqo_exec::PhysicalPlan`] without re-planning, and a fixed
//!   worker-pool [`QueryService::run_batch`] drives closed-loop throughput
//!   experiments (E9, and the mixed read/write E11).
//! * **Singleflight miss deduplication** ([`QueryService::try_run`] +
//!   [`QueryService::complete_miss`]): concurrent cold misses on the same
//!   `(fingerprint, store version, data epoch)` coordinates share one
//!   optimization — the first registrant leads, duplicates follow on a
//!   [`MissWaiter`] (waker-based, no thread parked), and a leader that
//!   dies mid-flight aborts cleanly instead of stranding its followers.
//!   This is the non-blocking seam the `sqo-frontend` reactor drives.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod cache;
mod persist;
mod service;
mod singleflight;

pub use cache::{CacheEntry, CacheStats, ShardedCache};
pub use persist::{
    audit_constraints, decode_constraints, decode_plan_seeds, encode_constraints,
    encode_plan_seeds, rebuild_store, ConstraintSeed, PlanSeed,
};
pub use service::{
    PreparedQuery, QueryService, ServiceConfig, ServiceError, ServiceResponse, ServiceStats, TryRun,
};
pub use singleflight::{FlightError, FlightKey, FlightResult, MissGuard, MissWaiter};
