//! # sqo-service
//!
//! The serving layer of the `sqo` workspace: a concurrent
//! [`QueryService`] that amortizes semantic optimization across the
//! repeated queries real traffic is made of.
//!
//! The ICDE'91 pipeline underneath is a single-shot library — every
//! [`sqo_core::SemanticOptimizer::optimize`] call re-runs the whole
//! transformation fixpoint and re-plans from scratch. This crate turns it
//! into a serveable engine:
//!
//! * **Canonical fingerprints** ([`sqo_query::QueryFingerprint`]) collapse
//!   every spelling of a query — shuffled predicates, reordered class
//!   lists — onto one cache identity.
//! * **Epoch-keyed invalidation**: cache keys pair the fingerprint with the
//!   constraint store's monotone [`sqo_constraints::ConstraintStore::epoch`];
//!   any constraint or statistics change bumps the epoch and every cached
//!   rewrite becomes unreachable at once.
//! * A **sharded LRU plan cache** ([`ShardedCache`]) keeps lock hold times
//!   tiny: readers of different queries land on different
//!   `parking_lot::RwLock` shards, readers of the same hot query share a
//!   read lock.
//! * A **prepared-query API** ([`QueryService::prepare`] →
//!   [`QueryService::execute_prepared`]) re-executes one shared
//!   [`sqo_exec::PhysicalPlan`] without re-planning, and a fixed
//!   worker-pool [`QueryService::run_batch`] drives closed-loop throughput
//!   experiments (E9).

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod cache;
mod service;

pub use cache::{CacheEntry, CacheKey, CacheStats, ShardedCache};
pub use service::{
    PreparedQuery, QueryService, ServiceConfig, ServiceError, ServiceResponse, ServiceStats,
};
