//! The sharded semantic-plan cache.
//!
//! Keyed by the **canonical query fingerprint**; every slot additionally
//! records the [`StoreVersion`] (constraint-store generation + epoch) its
//! rewrite was derived under, and a lookup only hits when the caller's
//! current version matches. Versions — not raw epochs — are the identity:
//! epochs collide across copy-on-write store swaps (see
//! [`sqo_constraints::StoreVersion`]), and an epoch-keyed cache can serve a
//! plan derived under the wrong constraints.
//!
//! Invalidation is two-level:
//!
//! * **Constraint inserts** call [`ShardedCache::invalidate_classes`] with
//!   the inserted constraint's touched class set: entries whose canonical
//!   query overlaps it are removed, all others are *revalidated* — re-stamped
//!   to the successor store's version in place (sound because constraint
//!   relevance requires `classes(c) ⊆ classes(q)`; a disjoint query's
//!   relevant set, and hence its rewrite and plan, is unchanged).
//! * **Statistics changes and store swaps** call
//!   [`ShardedCache::purge_stale`], which drops everything not derived under
//!   the current version — including entries stamped with *future* epochs of
//!   a different store generation, the case the old `epoch >= floor`
//!   retention silently kept alive.
//!
//! Data writes never touch the plan cache at all: plans depend only on
//! constraints and the statistics tier. What a data write invalidates is
//! each entry's **result memo**, which is gated on the data epoch it was
//! computed at ([`CacheEntry::memoized_results`]) and recomputed on the next
//! request after a write.
//!
//! Shards are independent `parking_lot::RwLock`s selected by fingerprint
//! bits, so concurrent readers of *different* queries never contend, and
//! readers of the *same* hot query share a read lock (recency is tracked
//! with a relaxed atomic, not a write lock). Each shard evicts
//! least-recently-used entries past its capacity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use sqo_catalog::{AttrRef, ClassId};
use sqo_constraints::StoreVersion;
use sqo_exec::{PhysicalPlan, ResultSet};
use sqo_query::{Query, QueryFingerprint};

use crate::singleflight::FlightTable;

/// One cached optimization: everything needed to answer the query again
/// without re-running the transformation fixpoint or the planner.
#[derive(Debug)]
pub struct CacheEntry {
    /// The canonical query — kept to disarm 64-bit fingerprint collisions.
    pub canonical: Query,
    /// The semantically optimized query.
    pub optimized: Query,
    /// The physical plan, shareable across executing threads. `None` iff
    /// the optimizer proved the answer empty (no plan is ever needed).
    pub plan: Option<Arc<PhysicalPlan>>,
    /// The optimizer proved the predicate set unsatisfiable: the answer is
    /// empty in every database state satisfying the constraints.
    pub provably_empty: bool,
    /// Result columns, for materializing empty answers without a plan.
    pub columns: Vec<AttrRef>,
    /// Result memo, gated on the **data epoch** it was computed at: a plan
    /// survives data writes, its materialized answer does not. Readers at
    /// the memo's epoch share the `Arc`; the first reader after a write
    /// re-executes and republishes (monotone: a racing older execution
    /// never overwrites a newer one).
    results: RwLock<Option<(u64, Arc<ResultSet>)>>,
}

impl CacheEntry {
    pub fn new(
        canonical: Query,
        optimized: Query,
        plan: Option<Arc<PhysicalPlan>>,
        provably_empty: bool,
        columns: Vec<AttrRef>,
    ) -> Self {
        Self { canonical, optimized, plan, provably_empty, columns, results: RwLock::new(None) }
    }

    /// The memoized result set, iff it was computed at `data_epoch`.
    pub fn memoized_results(&self, data_epoch: u64) -> Option<Arc<ResultSet>> {
        match &*self.results.read() {
            Some((epoch, results)) if *epoch == data_epoch => Some(Arc::clone(results)),
            _ => None,
        }
    }

    /// Publishes results computed at `data_epoch`. Keeps whichever memo is
    /// newer, so a slow executor racing a write can never clobber the
    /// post-write recomputation.
    pub fn publish_results(&self, data_epoch: u64, results: &Arc<ResultSet>) {
        let mut slot = self.results.write();
        match &*slot {
            Some((epoch, _)) if *epoch > data_epoch => {}
            _ => *slot = Some((data_epoch, Arc::clone(results))),
        }
    }
}

#[derive(Debug)]
struct Slot {
    entry: Arc<CacheEntry>,
    /// The store version the entry's rewrite is valid under. Re-stamped in
    /// place (under the shard write lock) when a constraint insert proves
    /// the entry untouched.
    version: StoreVersion,
    /// Global LRU clock value at last touch (relaxed: approximate recency
    /// is all LRU needs).
    last_used: AtomicU64,
}

type Shard = HashMap<QueryFingerprint, Slot>;

/// Point-in-time cache counters (monotone except `entries`/`shard_sizes`).
///
/// Snapshots are **self-consistent**: `hits + misses == lookups` holds in
/// every snapshot, even one taken mid-flight while other threads are
/// looking up. The cache maintains only two atomics (`lookups`, bumped
/// *before* the outcome is decided, and `hits`, bumped after) and derives
/// `misses = lookups - hits`; [`ShardedCache::stats`] reads `hits` before
/// `lookups`, so the read pair can never observe `hits > lookups`. With
/// three independent counters a snapshot could tear — a hit bumped but not
/// yet its lookup — and `hits + misses` would disagree with `lookups`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Completed lookups (`hits + misses`, exactly, in every snapshot).
    pub lookups: u64,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    /// Capacity (LRU) and staleness (purge) removals.
    pub evictions: u64,
    /// Entries removed because a constraint insert touched their classes.
    pub invalidations: u64,
    /// Entries kept across a constraint insert (class sets disjoint) and
    /// re-stamped to the successor store's version.
    pub revalidations: u64,
    pub entries: usize,
    pub shard_sizes: Vec<usize>,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; `0` before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }
}

/// N-way sharded LRU cache of [`CacheEntry`]s.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<RwLock<Shard>>,
    /// In-flight misses (singleflight): registered when a lookup misses,
    /// retired when the leader publishes the entry it derived. Behind an
    /// `Arc` so leader guards and follower waiters can outlive the borrow.
    flights: Arc<FlightTable>,
    per_shard_capacity: usize,
    clock: AtomicU64,
    /// Completed lookups. Incremented *before* `hits` on the hit path so
    /// `hits <= lookups` at every instant (see [`CacheStats`]).
    lookups: AtomicU64,
    hits: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    revalidations: AtomicU64,
}

impl ShardedCache {
    /// A cache with `shards` shards (rounded up to a power of two, min 1)
    /// and `capacity` total entries split evenly across them.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            flights: Arc::new(FlightTable::default()),
            per_shard_capacity,
            clock: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The singleflight in-flight miss registry attached to this cache.
    pub(crate) fn flights(&self) -> &Arc<FlightTable> {
        &self.flights
    }

    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    fn shard_of(&self, fingerprint: QueryFingerprint) -> &RwLock<Shard> {
        // Fibonacci hashing over the fingerprint bits.
        let h = fingerprint.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize & (self.shards.len() - 1)]
    }

    /// Looks up `fingerprint`, verifying both the stored canonical query (to
    /// rule out 64-bit fingerprint collisions) and that the entry is valid
    /// under `version`. Counts a hit or a miss.
    pub fn get(
        &self,
        fingerprint: QueryFingerprint,
        canonical: &Query,
        version: StoreVersion,
    ) -> Option<Arc<CacheEntry>> {
        // `lookups` first: `hits <= lookups` must hold in every stats()
        // snapshot. Program order alone does not give a concurrent reader
        // that guarantee — the Release on `hits` below and the Acquire load
        // in stats() do.
        // ordering: counter visible via the Release fence on `hits`; no
        // reader orders on `lookups` alone.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(fingerprint).read();
        match shard.get(&fingerprint) {
            Some(slot) if slot.version == version && slot.entry.canonical == *canonical => {
                // ordering: LRU timestamp; approximate recency is fine.
                slot.last_used.store(self.tick(), Ordering::Relaxed);
                // ordering: Release pairs with the Acquire load in stats().
                // A reader that observes this increment also observes the
                // `lookups` increment above (release sequence over the RMW
                // chain), so `hits <= lookups` holds on weak memory too —
                // Relaxed here only held on x86's TSO by accident.
                self.hits.fetch_add(1, Ordering::Release);
                Some(Arc::clone(&slot.entry))
            }
            _ => None,
        }
    }

    /// Inserts (or replaces) an entry derived under `version`, evicting the
    /// least-recently-used entry of the target shard if it is full.
    pub fn insert(
        &self,
        fingerprint: QueryFingerprint,
        version: StoreVersion,
        entry: Arc<CacheEntry>,
    ) {
        let mut shard = self.shard_of(fingerprint).write();
        if !shard.contains_key(&fingerprint) && shard.len() >= self.per_shard_capacity {
            if let Some(victim) = shard
                .iter()
                // ordering: LRU timestamps are heuristic; the shard write
                // lock already serializes this scan against get()'s bumps
                // up to a benign race on in-flight Relaxed stores.
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
            {
                shard.remove(&victim);
                // ordering: monotone display counter; no reader derives
                // cross-counter invariants from it.
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = Slot { entry, version, last_used: AtomicU64::new(self.tick()) };
        // ordering: monotone display counter.
        self.insertions.fetch_add(1, Ordering::Relaxed);
        shard.insert(fingerprint, slot);
    }

    /// Class-overlap invalidation for a constraint insert that moved the
    /// store from `prev` to `next`: entries valid at `prev` whose canonical
    /// query mentions any of `touched` are removed; entries valid at `prev`
    /// with a disjoint class set are revalidated (re-stamped to `next`);
    /// entries already at `next` are kept untouched (a reader that raced
    /// the store swap cached them under the successor — they are valid);
    /// entries at any *other* version are stale strays and are removed.
    pub fn invalidate_classes(&self, prev: StoreVersion, next: StoreVersion, touched: &[ClassId]) {
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|_, slot| {
                if slot.version == next {
                    return true;
                }
                if slot.version != prev {
                    // ordering: monotone display counter.
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                let overlaps = slot.entry.canonical.classes.iter().any(|c| touched.contains(c));
                if overlaps {
                    // ordering: monotone display counter.
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    slot.version = next;
                    // ordering: monotone display counter.
                    self.revalidations.fetch_add(1, Ordering::Relaxed);
                    true
                }
            });
        }
    }

    /// Drops every entry not derived under `current` — both entries from
    /// older epochs of the same store and entries from *any* epoch of a
    /// different (e.g. swapped-out) store generation, which a bare
    /// epoch-floor retention would wrongly keep.
    pub fn purge_stale(&self, current: StoreVersion) {
        for shard in &self.shards {
            let mut shard = shard.write();
            let before = shard.len();
            shard.retain(|_, slot| slot.version == current);
            let dropped = before - shard.len();
            // ordering: monotone display counter.
            self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        }
    }

    /// A point-in-time dump of every live entry with the version it is
    /// valid under, ordered by fingerprint for determinism — the snapshot
    /// save path (plan-cache seeds).
    pub fn entries(&self) -> Vec<(QueryFingerprint, StoreVersion, Arc<CacheEntry>)> {
        let mut out: Vec<(QueryFingerprint, StoreVersion, Arc<CacheEntry>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            out.extend(shard.iter().map(|(fp, slot)| (*fp, slot.version, Arc::clone(&slot.entry))));
        }
        out.sort_by_key(|(fp, _, _)| fp.0);
        out
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        // One read-lock pass: `entries` is derived from the same snapshot
        // as `shard_sizes`, so the two never disagree.
        let shard_sizes: Vec<usize> = self.shards.iter().map(|s| s.read().len()).collect();
        // Read `hits` strictly before `lookups`, and with Acquire:
        // observing a hit increment (Release in get()) then also observes
        // its preceding lookup increment, so `hits <= lookups` in this
        // snapshot and the derived `misses` can never underflow (see
        // [`CacheStats`] and tests::stats_hits_never_exceed_lookups).
        // ordering: Acquire pairs with the Release fetch_add in get().
        let hits = self.hits.load(Ordering::Acquire);
        // ordering: bounded below by `hits` via the Acquire above.
        let lookups = self.lookups.load(Ordering::Relaxed);
        CacheStats {
            lookups,
            hits,
            misses: lookups - hits,
            // ordering: monotone display counter, no cross-counter invariant.
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed), // ordering: display counter
            invalidations: self.invalidations.load(Ordering::Relaxed), // ordering: display counter
            revalidations: self.revalidations.load(Ordering::Relaxed), // ordering: display counter
            entries: shard_sizes.iter().sum(),
            shard_sizes,
        }
    }

    fn tick(&self) -> u64 {
        // ordering: LRU clock only needs per-RMW atomicity (uniqueness),
        // not cross-thread ordering — ties merely approximate recency.
        self.clock.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(q: &Query) -> Arc<CacheEntry> {
        Arc::new(CacheEntry::new(q.clone(), q.clone(), None, true, vec![]))
    }

    fn fp(v: u64) -> QueryFingerprint {
        QueryFingerprint(v)
    }

    fn v(generation: u64, epoch: u64) -> StoreVersion {
        StoreVersion { generation, epoch }
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ShardedCache::new(4, 64);
        let q = Query::new();
        cache.insert(fp(1), v(0, 0), entry(&q));
        assert!(cache.get(fp(1), &q, v(0, 0)).is_some());
        assert!(cache.get(fp(2), &q, v(0, 0)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn version_mismatch_misses() {
        let cache = ShardedCache::new(2, 8);
        let q = Query::new();
        cache.insert(fp(1), v(0, 0), entry(&q));
        assert!(cache.get(fp(1), &q, v(0, 1)).is_none(), "new epoch must miss");
        assert!(cache.get(fp(1), &q, v(1, 0)).is_none(), "other generation must miss");
        cache.insert(fp(1), v(0, 1), entry(&q));
        assert_eq!(cache.len(), 1, "one slot per fingerprint");
        cache.purge_stale(v(0, 1));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(fp(1), &q, v(0, 1)).is_some());
    }

    #[test]
    fn purge_drops_future_epochs_of_other_generations() {
        // The old `epoch >= floor` retention kept these: an entry stamped by
        // a swapped-out store whose epoch ran ahead of the current store's.
        let cache = ShardedCache::new(1, 8);
        let q = Query::new();
        cache.insert(fp(1), v(7, 40), entry(&q));
        cache.purge_stale(v(8, 3));
        assert_eq!(cache.len(), 0, "a stray from another store must not survive the swap");
    }

    #[test]
    fn fingerprint_collision_is_detected() {
        let cache = ShardedCache::new(1, 8);
        let q = Query::new();
        let mut other = Query::new();
        other.classes.push(ClassId(0));
        cache.insert(fp(7), v(0, 0), entry(&q));
        // Same fingerprint, different canonical query: must miss.
        assert!(cache.get(fp(7), &other, v(0, 0)).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ShardedCache::new(1, 2); // single shard, two slots
        let q = Query::new();
        cache.insert(fp(1), v(0, 0), entry(&q));
        cache.insert(fp(2), v(0, 0), entry(&q));
        let _ = cache.get(fp(1), &q, v(0, 0)); // touch 1 → 2 is now coldest
        cache.insert(fp(3), v(0, 0), entry(&q));
        assert!(cache.get(fp(1), &q, v(0, 0)).is_some(), "recently used survives");
        assert!(cache.get(fp(2), &q, v(0, 0)).is_none(), "coldest was evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn class_overlap_invalidation_revalidates_disjoint_entries() {
        let cache = ShardedCache::new(2, 16);
        let mut on_c0 = Query::new();
        on_c0.classes.push(ClassId(0));
        let mut on_c1 = Query::new();
        on_c1.classes.push(ClassId(1));
        let prev = v(3, 5);
        let next = v(4, 6);
        cache.insert(fp(1), prev, entry(&on_c0));
        cache.insert(fp(2), prev, entry(&on_c1));
        cache.insert(fp(3), v(9, 9), entry(&on_c1)); // stray from another store
                                                     // A reader racing the swap already cached an entry under `next`
                                                     // (even one overlapping the touched classes — it was derived under
                                                     // the successor store, so it is valid as-is).
        cache.insert(fp(4), next, entry(&on_c0));
        cache.invalidate_classes(prev, next, &[ClassId(0)]);
        assert!(cache.get(fp(1), &on_c0, next).is_none(), "overlapping entry removed");
        assert!(cache.get(fp(2), &on_c1, next).is_some(), "disjoint entry revalidated");
        assert!(cache.get(fp(3), &on_c1, next).is_none(), "stray removed");
        assert!(cache.get(fp(4), &on_c0, next).is_some(), "next-version entry kept");
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.revalidations, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn result_memo_is_gated_on_the_data_epoch() {
        let q = Query::new();
        let e = entry(&q);
        assert!(e.memoized_results(0).is_none());
        let r0 = Arc::new(ResultSet::new(vec![]));
        e.publish_results(0, &r0);
        assert!(Arc::ptr_eq(&e.memoized_results(0).unwrap(), &r0));
        assert!(e.memoized_results(1).is_none(), "a data write must force recomputation");
        // Newer publications win; older racers never clobber them.
        let r2 = Arc::new(ResultSet::new(vec![]));
        e.publish_results(2, &r2);
        e.publish_results(1, &r0);
        assert!(e.memoized_results(2).is_some());
        assert!(e.memoized_results(1).is_none());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedCache::new(3, 16).shard_count(), 4);
        assert_eq!(ShardedCache::new(0, 16).shard_count(), 1);
        assert!(ShardedCache::new(8, 1).capacity() >= 8);
    }

    /// Regression test for the `hits <= lookups` snapshot invariant: the
    /// Release on `hits` in get() and the Acquire (read-first) in stats()
    /// are what guarantee it — the sites used to be Relaxed, which held
    /// only on x86's strong memory model. Mid-flight snapshots must never
    /// tear (`hits > lookups` would underflow `misses`).
    #[test]
    fn stats_hits_never_exceed_lookups() {
        let cache = Arc::new(ShardedCache::new(4, 64));
        let q = Query::new();
        cache.insert(fp(7), v(0, 0), entry(&q));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let lookers: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let q = q.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = cache.get(fp(7), &q, v(0, 0));
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            let s = cache.stats();
            assert!(s.hits <= s.lookups, "torn snapshot: {} > {}", s.hits, s.lookups);
            assert_eq!(s.hits + s.misses, s.lookups);
        }
        stop.store(true, Ordering::Relaxed);
        for t in lookers {
            t.join().expect("looker thread never panics");
        }
    }
}
