//! The sharded semantic-plan cache.
//!
//! Keyed by `(query fingerprint, constraint-store epoch)`: the fingerprint
//! collapses order-variant spellings of the same query onto one entry
//! (`sqo-query`'s canonical form), and the epoch makes invalidation free —
//! when the constraint store changes, its epoch bumps and every cached
//! rewrite silently becomes unreachable, to be evicted by LRU pressure or an
//! explicit [`ShardedCache::purge_stale`].
//!
//! Shards are independent `parking_lot::RwLock`s selected by fingerprint
//! bits, so concurrent readers of *different* queries never contend, and
//! readers of the *same* hot query share a read lock (recency is tracked
//! with a relaxed atomic, not a write lock). Each shard evicts
//! least-recently-used entries past its capacity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use sqo_catalog::AttrRef;
use sqo_exec::{PhysicalPlan, ResultSet};
use sqo_query::{Query, QueryFingerprint};

/// Cache key: what query (canonically) under which semantic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub fingerprint: QueryFingerprint,
    pub epoch: u64,
}

/// One cached optimization: everything needed to answer the query again
/// without re-running the transformation fixpoint or the planner.
#[derive(Debug)]
pub struct CacheEntry {
    /// The canonical query — kept to disarm 64-bit fingerprint collisions.
    pub canonical: Query,
    /// The semantically optimized query.
    pub optimized: Query,
    /// The physical plan, shareable across executing threads. `None` iff
    /// the optimizer proved the answer empty (no plan is ever needed).
    pub plan: Option<Arc<PhysicalPlan>>,
    /// The optimizer proved the predicate set unsatisfiable: the answer is
    /// empty in every database state satisfying the constraints.
    pub provably_empty: bool,
    /// Result columns, for materializing empty answers without a plan.
    pub columns: Vec<AttrRef>,
    /// Result set cached after the first execution (the backing
    /// [`sqo_storage::Database`] is immutable once built, so results stay
    /// valid for the lifetime of the process; constraint changes alter
    /// *plans*, never answers). Write-once: the first executing thread
    /// publishes, every later thread shares the `Arc`.
    pub results: OnceLock<Arc<ResultSet>>,
}

#[derive(Debug)]
struct Slot {
    entry: Arc<CacheEntry>,
    /// Global LRU clock value at last touch (relaxed: approximate recency
    /// is all LRU needs).
    last_used: AtomicU64,
}

type Shard = HashMap<CacheKey, Slot>;

/// Point-in-time cache counters (monotone except `entries`/`shard_sizes`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub entries: usize,
    pub shard_sizes: Vec<usize>,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; `0` before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }
}

/// N-way sharded LRU cache of [`CacheEntry`]s.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<RwLock<Shard>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedCache {
    /// A cache with `shards` shards (rounded up to a power of two, min 1)
    /// and `capacity` total entries split evenly across them.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            per_shard_capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    fn shard_of(&self, key: &CacheKey) -> &RwLock<Shard> {
        // Mix the epoch in so successive epochs of a hot query do not pile
        // onto one shard; the multiplier is Fibonacci hashing's.
        let h = (key.fingerprint.0 ^ key.epoch.rotate_left(32)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize & (self.shards.len() - 1)]
    }

    /// Looks up `key`, verifying the stored canonical query to rule out
    /// fingerprint collisions. Counts a hit or a miss.
    pub fn get(&self, key: CacheKey, canonical: &Query) -> Option<Arc<CacheEntry>> {
        let shard = self.shard_of(&key).read();
        match shard.get(&key) {
            Some(slot) if slot.entry.canonical == *canonical => {
                slot.last_used.store(self.tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.entry))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting the least-recently-used
    /// entry of the target shard if it is full.
    pub fn insert(&self, key: CacheKey, entry: Arc<CacheEntry>) {
        let mut shard = self.shard_of(&key).write();
        if !shard.contains_key(&key) && shard.len() >= self.per_shard_capacity {
            if let Some(victim) = shard
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
            {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = Slot { entry, last_used: AtomicU64::new(self.tick()) };
        self.insertions.fetch_add(1, Ordering::Relaxed);
        shard.insert(key, slot);
    }

    /// Drops every entry whose epoch is older than `epoch` — entries that
    /// can never be hit again once the store has moved past them.
    pub fn purge_stale(&self, epoch: u64) {
        for shard in &self.shards {
            let mut shard = shard.write();
            let before = shard.len();
            shard.retain(|k, _| k.epoch >= epoch);
            let dropped = before - shard.len();
            self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        // One read-lock pass: `entries` is derived from the same snapshot
        // as `shard_sizes`, so the two never disagree.
        let shard_sizes: Vec<usize> = self.shards.iter().map(|s| s.read().len()).collect();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: shard_sizes.iter().sum(),
            shard_sizes,
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(q: &Query) -> Arc<CacheEntry> {
        Arc::new(CacheEntry {
            canonical: q.clone(),
            optimized: q.clone(),
            plan: None,
            provably_empty: true,
            columns: vec![],
            results: OnceLock::new(),
        })
    }

    fn key(fp: u64, epoch: u64) -> CacheKey {
        CacheKey { fingerprint: QueryFingerprint(fp), epoch }
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ShardedCache::new(4, 64);
        let q = Query::new();
        cache.insert(key(1, 0), entry(&q));
        assert!(cache.get(key(1, 0), &q).is_some());
        assert!(cache.get(key(2, 0), &q).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn epoch_partitions_the_key_space() {
        let cache = ShardedCache::new(2, 8);
        let q = Query::new();
        cache.insert(key(1, 0), entry(&q));
        assert!(cache.get(key(1, 1), &q).is_none(), "new epoch must miss");
        cache.insert(key(1, 1), entry(&q));
        assert_eq!(cache.len(), 2);
        cache.purge_stale(1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(key(1, 1), &q).is_some());
    }

    #[test]
    fn fingerprint_collision_is_detected() {
        let cache = ShardedCache::new(1, 8);
        let q = Query::new();
        let mut other = Query::new();
        other.classes.push(sqo_catalog::ClassId(0));
        cache.insert(key(7, 0), entry(&q));
        // Same key, different canonical query: must miss, not serve garbage.
        assert!(cache.get(key(7, 0), &other).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ShardedCache::new(1, 2); // single shard, two slots
        let q = Query::new();
        cache.insert(key(1, 0), entry(&q));
        cache.insert(key(2, 0), entry(&q));
        let _ = cache.get(key(1, 0), &q); // touch 1 → 2 is now coldest
        cache.insert(key(3, 0), entry(&q));
        assert!(cache.get(key(1, 0), &q).is_some(), "recently used survives");
        assert!(cache.get(key(2, 0), &q).is_none(), "coldest was evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedCache::new(3, 16).shard_count(), 4);
        assert_eq!(ShardedCache::new(0, 16).shard_count(), 1);
        assert!(ShardedCache::new(8, 1).capacity() >= 8);
    }
}
