//! Singleflight miss deduplication under real contention, plus the
//! invalidation-during-flight soundness case the flight key exists for.

use std::sync::Arc;

use sqo_service::{QueryService, TryRun};
use sqo_workload::{paper_scenario, DbSize};

fn service() -> (Arc<QueryService>, Vec<sqo_query::Query>) {
    let s = paper_scenario(DbSize::Db1, 7);
    (Arc::new(QueryService::new(Arc::new(s.store), Arc::new(s.db))), s.queries)
}

/// N concurrent misses on one fingerprint run exactly one optimization.
///
/// Deterministic, not timing-dependent: the main thread takes the leader
/// guard and *holds it* while N threads register, so every one of them is
/// forced onto the follower path before the flight resolves.
#[test]
fn n_simultaneous_misses_run_one_optimization() {
    const FOLLOWERS: usize = 32;
    let (service, queries) = service();
    let query = &queries[0];

    let TryRun::Leader(guard) = service.try_run(query).unwrap() else {
        panic!("cold miss must lead")
    };

    // The barrier releases the main thread only after every spawned
    // thread has registered; while the guard is held the flight is pinned
    // in the table and the cache entry unpublished, so each registration
    // is *forced* onto the follower path — no timing dependence.
    let registered = Arc::new(std::sync::Barrier::new(FOLLOWERS + 1));
    let joined: Vec<_> = (0..FOLLOWERS)
        .map(|_| {
            let service = Arc::clone(&service);
            let query = query.clone();
            let registered = Arc::clone(&registered);
            std::thread::spawn(move || {
                let run = service.try_run(&query).unwrap();
                registered.wait();
                match run {
                    TryRun::Follower(waiter) => waiter.wait().unwrap(),
                    other => panic!("expected follower while the flight is open, got {other:?}"),
                }
            })
        })
        .collect();
    registered.wait();

    let stats = service.stats();
    assert_eq!(stats.optimizations, 0, "nothing optimized while the leader guard is held");

    let led = service.complete_miss(guard).unwrap();
    for handle in joined {
        let followed = handle.join().unwrap();
        assert!(followed.results.same_multiset(&led.results));
        assert_eq!(followed.epoch, led.epoch);
        assert_eq!(followed.data_epoch, led.data_epoch);
    }

    let stats = service.stats();
    assert_eq!(stats.optimizations, 1, "N simultaneous misses must share one optimization");
    assert_eq!(stats.singleflight_leaders, 1);
    assert_eq!(stats.singleflight_followers, FOLLOWERS as u64);
    assert_eq!(
        stats.accepted,
        stats.cache.hits + stats.cache.misses,
        "stats snapshot must stay self-consistent"
    );
}

/// A constraint inserted while a miss is in flight must not let the flight
/// publish an entry that serves at the *new* store version.
#[test]
fn invalidation_during_flight_never_publishes_a_stale_entry() {
    let (service, queries) = service();
    let query = &queries[0];

    let TryRun::Leader(guard) = service.try_run(query).unwrap() else { panic!() };
    let v0 = guard.key().version;

    // Mid-flight constraint insert overlapping the query's classes
    // (duplicating an existing constraint is semantics-preserving, so
    // answers must not move — only the cache validity may): the store
    // version moves past v0.
    let overlapping = service
        .store()
        .constraints()
        .find(|(_, c)| c.classes.iter().any(|cl| query.canonical().classes.contains(cl)))
        .map(|(_, c)| c.clone())
        .expect("some constraint touches the query's classes");
    service.add_constraint(overlapping);
    let v1 = service.store_version();
    assert_ne!(v0, v1);

    // The leader completes against the store it registered under; its
    // published entry is stamped v0 and must not hit at v1.
    let led = service.complete_miss(guard).unwrap();
    assert_eq!(led.epoch, v0.epoch, "flight answers at its registration epoch");

    match service.try_run(query).unwrap() {
        TryRun::Leader(guard) => {
            // Correct: the v1 lookup missed the v0-stamped entry and must
            // re-derive under the new constraints.
            let fresh = service.complete_miss(guard).unwrap();
            assert_eq!(fresh.epoch, v1.epoch);
        }
        TryRun::Done(r) => {
            panic!(
                "stale-version entry served after mid-flight invalidation \
                 (cache_hit={}, epoch={}, expected a miss at epoch {})",
                r.cache_hit, r.epoch, v1.epoch
            );
        }
        TryRun::Follower(_) => panic!("no flight should be open"),
    }

    let stats = service.stats();
    assert_eq!(stats.optimizations, 2, "one per store version, never a stale share");
}
