//! Mutable-data serving under concurrency: reader threads answering a
//! Zipf-skewed query stream while writer threads mutate the database
//! through the service's write path.
//!
//! The core guarantee is **per-epoch linearizability, no torn reads**:
//! every response names the data epoch it was computed at, and its rows
//! must equal a fresh, uncached optimize→plan→execute run against that
//! epoch's recorded snapshot — a response mixing rows from two epochs can
//! match no single snapshot and fails the check. These tests are
//! timing-sensitive in debug builds; CI runs them under
//! `cargo test -p sqo-service --release`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sqo_core::SemanticOptimizer;
use sqo_exec::{execute, plan_query, CostBasedOracle, CostModel};
use sqo_query::Query;
use sqo_service::{QueryService, ServiceConfig};
use sqo_storage::{Database, IntegrityOptions, VersionedDatabase};
use sqo_workload::{
    mixed_workload, paper_scenario, service_workload, DbSize, MixedApplier, MixedOp,
    MixedWorkloadConfig, ServiceWorkloadConfig, WriteKind,
};

/// Fresh, uncached ground truth for `query` on one immutable snapshot.
fn reference_fingerprint(
    store: &sqo_constraints::ConstraintStore,
    db: &Database,
    query: &Query,
) -> u64 {
    let optimizer = SemanticOptimizer::new(store);
    let oracle = CostBasedOracle::new(db);
    let model = CostModel::default();
    let canonical = query.canonical();
    let out = optimizer.optimize(&canonical, &oracle).expect("optimize");
    let results = if out.report.provably_empty {
        sqo_exec::ResultSet::new(out.query.projections.iter().map(|p| p.attr).collect())
    } else {
        let plan = plan_query(db, &out.query, &model).expect("plan");
        execute(db, &plan).expect("execute").0
    };
    results.fingerprint()
}

#[test]
fn concurrent_writers_and_readers_observe_linearized_data_epochs() {
    let s = paper_scenario(DbSize::Db1, 42);
    let store = Arc::new(s.store);
    let handle =
        Arc::new(VersionedDatabase::with_integrity(Arc::new(s.db), IntegrityOptions::default()));
    let service = Arc::new(QueryService::with_versioned_db(
        Arc::clone(&store),
        Arc::clone(&handle),
        ServiceConfig { shards: 8, ..Default::default() },
    ));
    let reads = service_workload(
        &s.queries,
        &ServiceWorkloadConfig { seed: 5, distinct: 10, requests: 320, ..Default::default() },
    );
    let writes = mixed_workload(
        &s.queries,
        &s.catalog,
        &MixedWorkloadConfig { seed: 9, requests: 120, write_ratio: 1.0, ..Default::default() },
    );
    let write_kinds: Vec<WriteKind> = writes
        .ops
        .iter()
        .map(|op| match op {
            MixedOp::Write(kind) => *kind,
            MixedOp::Read { .. } => unreachable!("write_ratio 1.0"),
        })
        .collect();

    // Epoch → snapshot, recorded at commit time by the writers (epoch 0 is
    // the initial load). Writers also guard the applier's dup stacks.
    let snapshots: Mutex<HashMap<u64, Arc<Database>>> =
        Mutex::new(HashMap::from([(0, service.db())]));
    let applier = Mutex::new(MixedApplier::new(&service.db()));

    // (distinct index, observed data epoch, result fingerprint) per read.
    let observations: Vec<(usize, u64, u64)> = std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..2 {
            let service = Arc::clone(&service);
            let kinds = &write_kinds;
            let snapshots = &snapshots;
            let applier = &applier;
            writers.push(scope.spawn(move || {
                for kind in kinds.iter().skip(w).step_by(2) {
                    // resolve + submit + confirm under one lock: the batch
                    // must apply to the snapshot it was resolved against.
                    let mut applier = applier.lock();
                    let snapshot = service.db();
                    let (class, victim, batch) = applier.resolve(&snapshot, kind);
                    let outcome = service.write(&batch).expect("safe write rejected");
                    applier.confirm(class, victim, &outcome.receipt);
                    snapshots.lock().insert(outcome.epoch, outcome.snapshot);
                    drop(applier);
                    // Pace the writers so epochs spread across the readers'
                    // request stream (nothing below *asserts* interleaving —
                    // correctness must hold for any schedule).
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }));
        }
        let readers: Vec<_> = (0..6)
            .map(|r| {
                let service = Arc::clone(&service);
                let requests = &reads.requests;
                let indices = &reads.indices;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for (request, &i) in requests.iter().zip(indices).skip(r).step_by(6) {
                        let response = service.run(request).expect("run");
                        seen.push((i, response.data_epoch, response.results.fingerprint()));
                    }
                    seen
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer");
        }
        readers.into_iter().flat_map(|r| r.join().expect("reader")).collect()
    });

    // Every committed epoch has a recorded snapshot, and every observation
    // matches the uncached reference at *its* epoch: one linearized epoch
    // per answer, no torn reads.
    let snapshots = snapshots.into_inner();
    assert_eq!(snapshots.len(), write_kinds.len() + 1, "every write recorded its snapshot");
    let mut reference: HashMap<(usize, u64), u64> = HashMap::new();
    let mut epochs_observed: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for &(i, epoch, fingerprint) in &observations {
        epochs_observed.insert(epoch);
        let snapshot = snapshots.get(&epoch).expect("response named an unknown epoch");
        let expected = *reference
            .entry((i, epoch))
            .or_insert_with(|| reference_fingerprint(&store, snapshot, &reads.distinct[i]));
        assert_eq!(
            fingerprint, expected,
            "distinct query {i} diverged from the epoch-{epoch} reference"
        );
    }
    assert_eq!(observations.len(), 320);

    // Plans survived every data write: the cache was never purged and hits
    // kept landing.
    let stats = service.stats();
    assert_eq!(stats.writes, write_kinds.len() as u64);
    assert_eq!(stats.data_epoch, write_kinds.len() as u64);
    assert!(stats.cache.hits > 0, "plan-cache hit rate under writes must stay positive: {stats:?}");
    assert_eq!(
        stats.cache.evictions + stats.cache.invalidations,
        0,
        "data writes never invalidate plans: {stats:?}"
    );

    // Deterministic epilogue (no schedule dependence): one more write, then
    // one request per distinct query — every non-empty answer re-executes
    // its *cached* plan, and nothing re-optimizes.
    let before = service.stats();
    {
        let mut applier = applier.lock();
        let snapshot = service.db();
        let (class, victim, batch) = applier.resolve(
            &snapshot,
            &WriteKind::InsertDup { class: sqo_catalog::ClassId(1), source_rank: 3 },
        );
        let outcome = service.write(&batch).expect("write");
        applier.confirm(class, victim, &outcome.receipt);
    }
    let mut with_plan = 0;
    for q in &reads.distinct {
        let response = service.run(q).expect("run");
        assert!(response.cache_hit, "plans survive pure data writes");
        if !service.prepare(q).expect("prepare").provably_empty() {
            with_plan += 1;
        }
    }
    assert!(with_plan > 0, "the workload has executable queries");
    let after = service.stats();
    assert_eq!(after.optimizations, before.optimizations, "no re-optimization after a write");
    assert_eq!(
        after.executions,
        before.executions + with_plan,
        "memoized results do not survive a write: {after:?}"
    );
}

#[test]
fn single_threaded_write_stream_cross_checks_against_uncached_reference() {
    // The E11 invariant, in miniature and fully deterministic: after every
    // write, cached answers equal a freshly-optimized uncached reference
    // sharing the same versioned database.
    let s = paper_scenario(DbSize::Db1, 11);
    let store = Arc::new(s.store);
    let handle =
        Arc::new(VersionedDatabase::with_integrity(Arc::new(s.db), IntegrityOptions::default()));
    let warm = QueryService::with_versioned_db(
        Arc::clone(&store),
        Arc::clone(&handle),
        ServiceConfig::default(),
    );
    let cold = QueryService::with_versioned_db(
        Arc::clone(&store),
        Arc::clone(&handle),
        ServiceConfig { bypass_cache: true, ..Default::default() },
    );
    let wl = mixed_workload(
        &s.queries,
        &s.catalog,
        &MixedWorkloadConfig {
            seed: 3,
            distinct: 8,
            requests: 160,
            write_ratio: 0.25,
            ..Default::default()
        },
    );
    let mut applier = MixedApplier::new(&warm.db());
    let mut writes_seen = 0u64;
    for op in &wl.ops {
        match op {
            MixedOp::Write(kind) => {
                let snapshot = warm.db();
                let (class, victim, batch) = applier.resolve(&snapshot, kind);
                let outcome = warm.write(&batch).expect("safe write rejected");
                applier.confirm(class, victim, &outcome.receipt);
                writes_seen += 1;
            }
            MixedOp::Read { query, .. } => {
                let a = warm.run(query).expect("warm run");
                let b = cold.run(query).expect("cold run");
                assert_eq!(a.data_epoch, writes_seen, "reads see every prior write");
                assert!(
                    a.results.same_multiset(&b.results),
                    "cached answer diverged from the uncached reference at epoch {writes_seen}"
                );
            }
        }
    }
    assert_eq!(writes_seen, wl.writes as u64);
    let stats = warm.stats();
    assert!(stats.cache.hit_rate() > 0.5, "plans keep serving across writes: {stats:?}");
}
