//! Regression tests for the epoch-collision family of cache bugs.
//!
//! Under the pre-fix scheme, cache identity was the bare constraint-store
//! **epoch**: `with_constraint` stamped a copy-on-write successor with
//! `source.epoch() + 1`, a value the source store could independently reach
//! through `note_statistics_change` / `insert_constraint`. Two stores with
//! different constraint sets then shared an epoch, and the service's
//! `(fingerprint, epoch)` cache could serve a plan derived under the wrong
//! constraints after a store swap. Likewise, `purge_stale` retained every
//! entry with `epoch >= floor`, keeping *future*-epoch strays stamped by a
//! swapped-out store.
//!
//! The fix keys cache validity on the full [`StoreVersion`] (a
//! process-globally unique store generation + the epoch). These tests
//! reproduce the collision interleaving and fail under the old scheme.

use std::sync::Arc;

use sqo_constraints::{ConstraintId, ConstraintStore, StoreOptions, StoreVersion};
use sqo_service::{CacheEntry, QueryService, ServiceConfig, ShardedCache};
use sqo_workload::{paper_scenario, DbSize};

fn store_pair() -> (Arc<ConstraintStore>, ConstraintStore) {
    let s = paper_scenario(DbSize::Db1, 42);
    let catalog = Arc::clone(&s.catalog);
    let a = Arc::new(
        ConstraintStore::build(
            catalog,
            s.store.constraints().map(|(_, c)| c.clone()).collect(),
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        )
        .unwrap(),
    );
    // The interleaving QueryService::add_constraint admits: the successor B
    // is built from A, and a statistics change lands on A before (or while)
    // the swap completes.
    let extra = a.constraint(ConstraintId(0)).clone();
    let b = a.with_constraint(extra);
    a.note_statistics_change();
    (a, b)
}

#[test]
fn cow_swap_with_racing_stats_change_cannot_serve_a_stale_plan() {
    let s = paper_scenario(DbSize::Db1, 42);
    let (a, b) = store_pair();
    // The collision is real: both stores sit at the same epoch with
    // different constraint sets…
    assert_eq!(a.epoch(), b.epoch(), "the ambiguity the old scheme keyed on");
    assert_ne!(a.len(), b.len(), "…despite different constraint populations");
    // …but their versions are distinct.
    assert_ne!(a.version(), b.version());

    // Replay what the service's cache does across the swap. A reader still
    // on store A misses and files an entry derived under A's constraints:
    let cache = ShardedCache::new(4, 64);
    let canonical = s.queries[0].canonical();
    let fingerprint = canonical.fingerprint_canonical();
    let entry = Arc::new(CacheEntry::new(canonical.clone(), canonical.clone(), None, true, vec![]));
    cache.insert(fingerprint, a.version(), Arc::clone(&entry));

    // The swap to B completes and purges under B's identity. Under the old
    // `epoch >= floor` retention the A-derived entry (same epoch!) survived
    // and the next lookup — now under B — served it: a plan derived under
    // the wrong constraint set.
    cache.purge_stale(b.version());
    assert!(
        cache.get(fingerprint, &canonical, b.version()).is_none(),
        "an entry derived under store A must never hit under store B"
    );
    assert!(cache.is_empty(), "the A-derived entry is unreachable and purged");
}

#[test]
fn future_epoch_strays_do_not_survive_a_store_swap() {
    // `purge_stale` satellite: a swapped-out store's epoch may run *ahead*
    // of the swapped-in store's. Entries it stamped must not be retained.
    let (a, b) = store_pair();
    for _ in 0..5 {
        a.note_statistics_change(); // A races far past B
    }
    assert!(a.epoch() > b.epoch());
    let cache = ShardedCache::new(1, 16);
    let q = sqo_query::Query::new();
    let entry = Arc::new(CacheEntry::new(q.clone(), q.clone(), None, true, vec![]));
    cache.insert(q.fingerprint(), a.version(), entry);
    cache.purge_stale(b.version());
    assert!(cache.is_empty(), "future-epoch entries from another store are stale, not fresh");
}

#[test]
fn replace_store_purges_everything_and_keeps_epochs_monotone() {
    // The service-level store-swap path: an externally rebuilt store (fresh
    // generation, arbitrary epoch) replaces the current one.
    let s = paper_scenario(DbSize::Db1, 42);
    let constraints: Vec<_> = s.store.constraints().map(|(_, c)| c.clone()).collect();
    let catalog = Arc::clone(&s.catalog);
    let service =
        QueryService::with_config(Arc::new(s.store), Arc::new(s.db), ServiceConfig::default());
    let cached = service.run(&s.queries[0]).unwrap();
    assert!(service.stats().cache.entries > 0);
    let old_epoch = service.epoch();

    let rebuilt = Arc::new(
        ConstraintStore::build(catalog, constraints, StoreOptions::paper_defaults()).unwrap(),
    );
    let new_epoch = service.replace_store(Arc::clone(&rebuilt));
    assert!(new_epoch > old_epoch, "epoch sequences stay monotone across swaps");
    assert_eq!(service.stats().cache.entries, 0, "no old-generation entry survives");
    let fresh = service.run(&s.queries[0]).unwrap();
    assert!(!fresh.cache_hit, "the swapped-in store re-derives rewrites");
    assert!(
        fresh.results.same_multiset(&cached.results),
        "the rebuilt store is semantically equal"
    );
}

#[test]
fn store_version_is_the_public_cache_identity() {
    // StoreVersion is plain data; two observations of one store state agree.
    let (a, _) = store_pair();
    let v1: StoreVersion = a.version();
    let v2 = a.version();
    assert_eq!(v1, v2);
    a.note_statistics_change();
    assert_ne!(a.version(), v1, "every semantic change moves the version");
}
