//! End-to-end warm-start contract: a service saved with
//! [`QueryService::save_snapshot`] and rebooted with
//! [`QueryService::warm_start`] must answer the paper workload identically
//! to the service it was saved from — from the plan cache, without a
//! single re-optimization — at every validation level, and a snapshot with
//! damaged serving sections must be rejected, not half-loaded.

use std::sync::Arc;

use sqo_query::Query;
use sqo_service::{QueryService, ServiceConfig};
use sqo_snapshot::{
    LoadError, SnapshotBuilder, SnapshotFile, ValidationLevel, SEC_CONSTRAINTS, SEC_PLANSEEDS,
};
use sqo_workload::{paper_scenario, DbSize};

/// A served scenario: the paper workload's first 16 queries answered once,
/// so the plan cache holds exactly the state the snapshot should persist.
fn served() -> (QueryService, Vec<Query>) {
    let s = paper_scenario(DbSize::Db1, 7);
    let service = QueryService::new(Arc::new(s.store), Arc::new(s.db));
    let queries: Vec<Query> = s.queries.into_iter().take(16).collect();
    for q in &queries {
        service.run(q).expect("cold run");
    }
    (service, queries)
}

#[test]
fn warm_start_replays_the_workload_from_the_cache() {
    let (cold, queries) = served();
    let cold_answers: Vec<_> = queries.iter().map(|q| cold.run(q).unwrap().results).collect();

    let path = std::env::temp_dir().join("sqo_roundtrip_test.sqos");
    cold.save_snapshot(&path).expect("save");
    for level in [ValidationLevel::Standard, ValidationLevel::Strict, ValidationLevel::Audit] {
        let warm = QueryService::warm_start(&path, level, ServiceConfig::default())
            .unwrap_or_else(|e| panic!("warm start at {level:?}: {e}"));
        assert_eq!(warm.epoch(), cold.epoch(), "semantic epoch survives the trip");
        assert_eq!(
            warm.stats().data_epoch,
            cold.stats().data_epoch,
            "data epoch survives the trip"
        );
        for (q, want) in queries.iter().zip(&cold_answers) {
            let r = warm.run(q).unwrap();
            assert!(r.cache_hit, "warm service answers from the persisted cache at {level:?}");
            assert!(r.results.same_multiset(want), "warm answer differs at {level:?}");
        }
        assert_eq!(
            warm.stats().optimizations,
            0,
            "a warm start must never re-optimize the persisted workload ({level:?})"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// Rebuilds the container with one serving section's payload replaced
/// (valid checksums, damaged content).
fn with_section(bytes: &[u8], replace: u32, payload: Option<Vec<u8>>) -> Vec<u8> {
    let file = SnapshotFile::parse(bytes).expect("good snapshot parses");
    let mut b = SnapshotBuilder::new();
    for (id, p) in file.sections() {
        if id == replace {
            if let Some(ref damaged) = payload {
                b.section(id, damaged.clone());
            }
        } else {
            b.section(id, p.to_vec());
        }
    }
    b.finish()
}

#[test]
fn damaged_serving_sections_are_rejected() {
    let (cold, _) = served();
    let bytes = cold.snapshot_bytes();

    let missing = with_section(&bytes, SEC_CONSTRAINTS, None);
    let err = QueryService::from_snapshot_bytes(
        &missing,
        ValidationLevel::Standard,
        ServiceConfig::default(),
    )
    .expect_err("a snapshot without CONSTRAINTS must not boot");
    assert!(
        matches!(err, LoadError::MissingSection("CONSTRAINTS")),
        "expected MissingSection(CONSTRAINTS), got {err:?}"
    );

    let garbled = with_section(&bytes, SEC_PLANSEEDS, Some(vec![0xfe; 9]));
    let err = QueryService::from_snapshot_bytes(
        &garbled,
        ValidationLevel::Standard,
        ServiceConfig::default(),
    )
    .expect_err("garbage plan seeds must not boot");
    assert!(
        matches!(err, LoadError::Malformed { .. }),
        "expected Malformed for garbled PLANSEEDS, got {err:?}"
    );

    // A snapshot may omit PLANSEEDS entirely (cold cache, warm data) —
    // that is a valid file, not a damaged one.
    let cacheless = with_section(&bytes, SEC_PLANSEEDS, None);
    let warm = QueryService::from_snapshot_bytes(
        &cacheless,
        ValidationLevel::Audit,
        ServiceConfig::default(),
    )
    .expect("PLANSEEDS is an optional section");
    assert_eq!(warm.epoch(), cold.epoch());
}
