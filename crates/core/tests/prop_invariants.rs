//! Property tests for the core algorithm's invariants:
//! tag monotonicity, termination, and the uniqueness of the transformation
//! fixpoint on randomly generated constraint populations.

use proptest::prelude::*;
use std::sync::Arc;

use sqo_catalog::{AttributeDef, Catalog, DataType, IndexKind};
use sqo_constraints::{ConstraintBuilder, ConstraintStore, StoreOptions};
use sqo_core::{
    run_transformations, MatchPolicy, OptimizerConfig, PredicateTag, QueueDiscipline,
    TransformationTable,
};
use sqo_query::{CompOp, QueryBuilder};

/// One class, three feature attributes, three derived attributes (one
/// indexed) — enough to express every constraint shape intra-class.
fn catalog() -> Arc<Catalog> {
    let mut b = Catalog::builder();
    b.class(
        "t",
        vec![
            AttributeDef::new("a0", DataType::Int),
            AttributeDef::new("a1", DataType::Int),
            AttributeDef::new("a2", DataType::Int),
            AttributeDef::new("b0", DataType::Int),
            AttributeDef::new("b1", DataType::Int),
            AttributeDef::indexed("b2", DataType::Int, IndexKind::Hash),
        ],
    )
    .unwrap();
    Arc::new(b.build().unwrap())
}

/// A random single-class constraint population: `a_i = v -> b_j = w` and
/// chains `b_j = w -> b_k = u`.
fn constraints(
    catalog: &Arc<Catalog>,
    spec: &[(u8, i64, u8, i64)],
) -> Vec<sqo_constraints::HornConstraint> {
    spec.iter()
        .enumerate()
        .filter_map(|(i, &(ante, av, cons, cv))| {
            let ante_attr =
                format!("t.{}", ["a0", "a1", "a2", "b0", "b1", "b2"][(ante % 6) as usize]);
            let cons_attr = format!("t.{}", ["b0", "b1", "b2"][(cons % 3) as usize]);
            if ante_attr == cons_attr {
                return None;
            }
            ConstraintBuilder::new(catalog, format!("p{i}"))
                .when(&ante_attr, CompOp::Eq, av)
                .then(&cons_attr, CompOp::Eq, cv)
                .build()
                .ok()
        })
        .collect()
}

fn final_tags(
    catalog: &Arc<Catalog>,
    cs: Vec<sqo_constraints::HornConstraint>,
    query_preds: &[(u8, i64)],
    discipline: QueueDiscipline,
) -> Vec<(String, Option<PredicateTag>)> {
    let store = ConstraintStore::build(
        Arc::clone(catalog),
        cs,
        StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
    )
    .unwrap();
    let mut qb = QueryBuilder::new(catalog).select("t.a0");
    for &(attr, v) in query_preds {
        let name = format!("t.{}", ["a0", "a1", "a2", "b0", "b1", "b2"][(attr % 6) as usize]);
        qb = qb.filter(&name, CompOp::Eq, v);
    }
    let query = qb.build_unchecked();
    if query.validate(store.catalog()).is_err() {
        return vec![];
    }
    let relevant = store.relevant_for(&query);
    let config = OptimizerConfig { queue: discipline, ..OptimizerConfig::paper() };
    let mut table = TransformationTable::build(
        store.catalog(),
        &store,
        &relevant,
        &query,
        MatchPolicy::Implication,
    );
    run_transformations(&mut table, &config);
    let mut out: Vec<(String, Option<PredicateTag>)> =
        table.pool().iter().map(|(id, p)| (format!("{p:?}"), table.final_tag(id))).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| format!("{:?}", a.1).cmp(&format!("{:?}", b.1))));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fixpoint is unique: FIFO and priority queues produce identical
    /// final tags for arbitrary constraint populations, and so does
    /// reversing the constraint list.
    #[test]
    fn unique_fixpoint(
        spec in prop::collection::vec((0u8..6, -3i64..3, 0u8..3, -3i64..3), 1..10),
        query_preds in prop::collection::vec((0u8..6, -3i64..3), 1..4),
    ) {
        let catalog = catalog();
        let cs = constraints(&catalog, &spec);
        prop_assume!(!cs.is_empty());
        let fifo = final_tags(&catalog, cs.clone(), &query_preds, QueueDiscipline::Fifo);
        let prio = final_tags(&catalog, cs.clone(), &query_preds, QueueDiscipline::Priority);
        prop_assert_eq!(&fifo, &prio);
        let mut rev = cs;
        rev.reverse();
        let rev_tags = final_tags(&catalog, rev, &query_preds, QueueDiscipline::Fifo);
        prop_assert_eq!(&fifo, &rev_tags);
    }

    /// Termination + single-fire: the transformation count never exceeds the
    /// number of relevant constraints (each fires at most once).
    #[test]
    fn transformations_bounded_by_constraints(
        spec in prop::collection::vec((0u8..6, -3i64..3, 0u8..3, -3i64..3), 1..12),
        query_preds in prop::collection::vec((0u8..6, -3i64..3), 1..4),
    ) {
        let catalog = catalog();
        let cs = constraints(&catalog, &spec);
        prop_assume!(!cs.is_empty());
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            cs,
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        ).unwrap();
        let mut qb = QueryBuilder::new(&catalog).select("t.a0");
        for &(attr, v) in &query_preds {
            let name = format!("t.{}", ["a0", "a1", "a2", "b0", "b1", "b2"][(attr % 6) as usize]);
            qb = qb.filter(&name, CompOp::Eq, v);
        }
        let query = qb.build_unchecked();
        prop_assume!(query.validate(store.catalog()).is_ok());
        let relevant = store.relevant_for(&query);
        let config = OptimizerConfig::paper();
        let mut table = TransformationTable::build(
            store.catalog(), &store, &relevant, &query, MatchPolicy::Implication,
        );
        let log = run_transformations(&mut table, &config);
        prop_assert!(log.applied.len() <= relevant.len());
        // Quiescence: a second run is a no-op.
        let log2 = run_transformations(&mut table, &config);
        prop_assert!(log2.applied.is_empty());
    }

    /// Monotonicity: no predicate's final tag is ever *above* its initial
    /// tag (query predicates start imperative; nothing is promoted).
    #[test]
    fn tags_never_promoted(
        spec in prop::collection::vec((0u8..6, -3i64..3, 0u8..3, -3i64..3), 1..10),
        query_preds in prop::collection::vec((0u8..6, -3i64..3), 1..4),
    ) {
        let catalog = catalog();
        let cs = constraints(&catalog, &spec);
        prop_assume!(!cs.is_empty());
        let tags = final_tags(&catalog, cs, &query_preds, QueueDiscipline::Fifo);
        for (_, tag) in tags {
            if let Some(t) = tag {
                // Imperative is the top: everything observed is <= top.
                prop_assert!(!PredicateTag::Imperative.can_lower_to(t) || t != PredicateTag::Imperative);
            }
        }
    }
}
