//! The transformation queue `Q` (§3.2, §4).
//!
//! The base algorithm uses FIFO order — and proves order immaterial. The §4
//! extension turns `Q` into a priority queue so that, under a transformation
//! budget, the likely-profitable transformations run first:
//! *index introduction* > *restriction elimination* > *restriction
//! introduction*.

use std::collections::{BinaryHeap, VecDeque};

use crate::config::QueueDiscipline;

/// What popping a row is expected to do — determines priority (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionKind {
    /// Introduce a predicate on a non-indexed attribute.
    RestrictionIntroduction = 1,
    /// Lower the tag of a predicate already present.
    RestrictionElimination = 2,
    /// Introduce a predicate on an indexed attribute.
    IndexIntroduction = 3,
}

#[derive(Debug, PartialEq, Eq)]
struct HeapEntry {
    kind: ActionKind,
    /// FIFO tiebreak within a priority class (larger seq = later).
    seq: usize,
    row: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher kind first, then earlier seq.
        (self.kind as u8).cmp(&(other.kind as u8)).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Queue of pending transformations, identified by table row index.
#[derive(Debug)]
pub struct TransformationQueue {
    discipline: QueueDiscipline,
    fifo: VecDeque<usize>,
    heap: BinaryHeap<HeapEntry>,
    queued: Vec<bool>,
    seq: usize,
}

impl TransformationQueue {
    pub fn new(discipline: QueueDiscipline, rows: usize) -> Self {
        let mut q = Self {
            discipline,
            fifo: VecDeque::new(),
            heap: BinaryHeap::new(),
            queued: Vec::new(),
            seq: 0,
        };
        q.reset(discipline, rows);
        q
    }

    /// Re-initializes the queue for a new run of `rows` rows, keeping the
    /// backing allocations (the optimizer-scratch pattern).
    pub fn reset(&mut self, discipline: QueueDiscipline, rows: usize) {
        self.discipline = discipline;
        self.fifo.clear();
        self.heap.clear();
        self.queued.clear();
        self.queued.resize(rows, false);
        self.seq = 0;
    }

    /// Enqueues a row (idempotent while the row is queued).
    pub fn push(&mut self, row: usize, kind: ActionKind) {
        if self.queued[row] {
            return;
        }
        self.queued[row] = true;
        self.seq += 1;
        match self.discipline {
            QueueDiscipline::Fifo => self.fifo.push_back(row),
            QueueDiscipline::Priority => self.heap.push(HeapEntry { kind, seq: self.seq, row }),
        }
    }

    pub fn pop(&mut self) -> Option<usize> {
        let row = match self.discipline {
            QueueDiscipline::Fifo => self.fifo.pop_front(),
            QueueDiscipline::Priority => self.heap.pop().map(|e| e.row),
        }?;
        self.queued[row] = false;
        Some(row)
    }

    pub fn is_empty(&self) -> bool {
        match self.discipline {
            QueueDiscipline::Fifo => self.fifo.is_empty(),
            QueueDiscipline::Priority => self.heap.is_empty(),
        }
    }

    pub fn len(&self) -> usize {
        match self.discipline {
            QueueDiscipline::Fifo => self.fifo.len(),
            QueueDiscipline::Priority => self.heap.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_insertion_order() {
        let mut q = TransformationQueue::new(QueueDiscipline::Fifo, 5);
        q.push(3, ActionKind::RestrictionIntroduction);
        q.push(1, ActionKind::IndexIntroduction);
        q.push(4, ActionKind::RestrictionElimination);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn priority_orders_by_kind_then_fifo() {
        let mut q = TransformationQueue::new(QueueDiscipline::Priority, 6);
        q.push(0, ActionKind::RestrictionIntroduction);
        q.push(1, ActionKind::RestrictionElimination);
        q.push(2, ActionKind::IndexIntroduction);
        q.push(3, ActionKind::RestrictionElimination);
        assert_eq!(q.pop(), Some(2), "index introduction first");
        assert_eq!(q.pop(), Some(1), "then eliminations, FIFO among equals");
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(0), "plain introduction last");
    }

    #[test]
    fn duplicate_pushes_ignored_while_queued() {
        let mut q = TransformationQueue::new(QueueDiscipline::Fifo, 3);
        q.push(1, ActionKind::RestrictionElimination);
        q.push(1, ActionKind::RestrictionElimination);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(1));
        // After popping, the row may be requeued.
        q.push(1, ActionKind::RestrictionElimination);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_checks() {
        let mut q = TransformationQueue::new(QueueDiscipline::Priority, 2);
        assert!(q.is_empty());
        q.push(0, ActionKind::IndexIntroduction);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
