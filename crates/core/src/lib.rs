//! # sqo-core
//!
//! The primary contribution of Pang, Lu & Ooi, *An Efficient Semantic Query
//! Optimization Algorithm* (ICDE 1991): semantic query optimization by
//! **tentative, order-immaterial transformations**.
//!
//! Instead of physically rewriting the query (and thereby making early
//! transformations preclude later ones), the optimizer:
//!
//! 1. builds a **transformation table** `T` over the relevant constraints
//!    and the predicate set `P` ([`TransformationTable`], §3.1);
//! 2. repeatedly fires enabled constraints from a **transformation queue**,
//!    each firing only *lowering a predicate's tag* in the lattice
//!    `Imperative > Optional > Redundant` ([`run_transformations`],
//!    §3.2–3.3, Tables 3.1/3.2);
//! 3. **formulates** the final query at the end: imperative predicates are
//!    retained, redundant ones dropped, optional ones submitted to a
//!    cost–benefit [`ProfitOracle`], and dangling classes eliminated
//!    ([`formulate`], §3.4, Table 3.3).
//!
//! Because tags only move down the lattice (meet-assignment) and constraint
//! enabling is monotone, the fixpoint is unique: **the order of
//! transformations is immaterial**, and the whole transformation phase is
//! `O(m·n)` for `m` distinct predicates and `n` relevant constraints.
//!
//! ```
//! use std::sync::Arc;
//! use sqo_catalog::example::figure21;
//! use sqo_constraints::{figure22, ConstraintStore, StoreOptions};
//! use sqo_core::{SemanticOptimizer, StructuralOracle};
//! use sqo_query::{parse_query, QueryExt};
//!
//! let catalog = Arc::new(figure21().unwrap());
//! let store = ConstraintStore::build(
//!     Arc::clone(&catalog), figure22(&catalog).unwrap(),
//!     StoreOptions::paper_defaults()).unwrap();
//! let optimizer = SemanticOptimizer::new(&store);
//! let query = parse_query(
//!     r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
//!         {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
//!         {collects, supplies} {supplier, cargo, vehicle})"#,
//!     &catalog).unwrap();
//! let out = optimizer.optimize(&query, &StructuralOracle).unwrap();
//! assert!(out.query.display(&catalog).to_string().contains("{collects} {cargo, vehicle})"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod config;
mod formulate;
mod optimizer;
mod oracle;
mod queue;
mod report;
mod scratch;
mod table;
mod tag;
mod transform;
mod verify;

pub use config::{MatchPolicy, OptimizerConfig, QueueDiscipline, TagPolicy};
pub use formulate::{formulate, formulate_with, FormulationResult, FormulationScratch};
pub use optimizer::{Optimized, SemanticOptimizer};
pub use oracle::{DropAllOracle, ProfitOracle, StructuralOracle};
pub use queue::{ActionKind, TransformationQueue};
pub use report::{OptimizationReport, PhaseTimings};
pub use scratch::OptimizerScratch;
pub use table::{Row, TableBuffers, TransformationTable};
pub use tag::{CellState, ColumnPresence, PredicateTag};
pub use transform::{
    run_transformations, run_transformations_with, target_tag, TransformLog, TransformScratch,
    TransformationKind, TransformationRecord,
};
pub use verify::{verify_optimization, VerificationReport};
