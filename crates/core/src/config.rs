//! Optimizer configuration.
//!
//! Defaults follow the paper; the switches exist to power the ablation
//! benchmarks (DESIGN.md experiments E5–E8).

use serde::{Deserialize, Serialize};

/// How antecedent/consequent presence in the query is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MatchPolicy {
    /// A query predicate satisfies an antecedent if it *implies* it
    /// (`B > 15` satisfies `B > 10`). Consequent presence for elimination
    /// remains syntactic (only an exact occurrence may be removed).
    #[default]
    Implication,
    /// The paper-literal mode: only structurally equal predicates count.
    Syntactic,
}

/// Which tag-assignment rule the transformation step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TagPolicy {
    /// Tables 3.1/3.2 (normative): intra-class constraints lower to
    /// `Redundant` unless the consequent is on an indexed attribute, in
    /// which case `Optional`; inter-class constraints lower to `Optional`.
    #[default]
    Tables,
    /// The simplified §3.3 pseudocode: intra always lowers to `Redundant`,
    /// ignoring the indexed case. Kept for the ablation bench.
    Pseudocode,
}

/// Queue discipline for pending transformations (§4 extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// First-in first-out — the base algorithm.
    #[default]
    Fifo,
    /// The paper's priority extension: index introduction before
    /// restriction elimination before restriction introduction. Useful with
    /// a transformation budget.
    Priority,
}

/// Full configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    pub match_policy: MatchPolicy,
    pub tag_policy: TagPolicy,
    pub queue: QueueDiscipline,
    /// Maximum number of transformations to apply (`None` = unlimited).
    /// Meaningful mostly with [`QueueDiscipline::Priority`] (§4).
    pub budget: Option<usize>,
    /// Attempt class elimination during formulation (King's rule).
    pub class_elimination: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            match_policy: MatchPolicy::default(),
            tag_policy: TagPolicy::default(),
            queue: QueueDiscipline::default(),
            budget: None,
            class_elimination: true,
        }
    }
}

impl OptimizerConfig {
    /// The configuration closest to the paper's description.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Budgeted priority-queue variant (§4).
    pub fn budgeted(budget: usize) -> Self {
        Self { queue: QueueDiscipline::Priority, budget: Some(budget), ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OptimizerConfig::default();
        assert_eq!(c.match_policy, MatchPolicy::Implication);
        assert_eq!(c.tag_policy, TagPolicy::Tables);
        assert_eq!(c.queue, QueueDiscipline::Fifo);
        assert_eq!(c.budget, None);
        assert!(c.class_elimination);
    }

    #[test]
    fn budgeted_uses_priority() {
        let c = OptimizerConfig::budgeted(3);
        assert_eq!(c.queue, QueueDiscipline::Priority);
        assert_eq!(c.budget, Some(3));
    }
}
