//! Query formulation (§3.4): turn final predicate tags into the transformed
//! query.
//!
//! * **imperative** predicates are retained;
//! * **redundant** predicates are discarded outright (the paper: such
//!   transformations "should always be carried out" — no profitability check
//!   needed);
//! * **optional** predicates go through the cost–benefit oracle;
//! * **class elimination** (King's rule) runs first, under the structural
//!   soundness conditions of DESIGN.md §3.4 — dangling class, nothing
//!   projected, no imperative predicate, and exactly-one linkage from the
//!   surviving side (to-one + total participation);
//! * projections whose value is pinned by an entailed equality get the
//!   paper's `attr=value` **binding** annotation (Figure 2.3's
//!   `cargo.desc="frozen food"`).

use sqo_catalog::{Catalog, ClassId};
use sqo_query::{Predicate, Query};

use crate::config::OptimizerConfig;
use crate::oracle::ProfitOracle;
use crate::table::TransformationTable;
use crate::tag::{ColumnPresence, PredicateTag};

/// Outcome of formulation, with full bookkeeping for the report.
#[derive(Debug, Clone)]
pub struct FormulationResult {
    pub query: Query,
    pub eliminated_classes: Vec<ClassId>,
    /// Predicates dropped because their final tag was redundant.
    pub dropped_redundant: Vec<Predicate>,
    /// Optional predicates dropped by the cost–benefit analysis.
    pub dropped_unprofitable: Vec<Predicate>,
    /// Optional predicates retained in the final query.
    pub retained_optional: Vec<Predicate>,
    /// Predicates newly introduced into the final query.
    pub introduced: Vec<Predicate>,
    /// Final classification of every predicate that was in play.
    pub final_tags: Vec<(Predicate, PredicateTag)>,
    /// The entailed predicate set is contradictory: every result row would
    /// have to satisfy two mutually exclusive predicates, so the answer is
    /// empty *without touching the database* — the paper's "unless the
    /// output can be obtained without going to the database" case.
    pub provably_empty: bool,
}

/// Reusable working memory of formulation's cost–benefit loops.
///
/// Every class-elimination and optional-predicate decision costs a
/// *candidate* query — the working query minus one class or predicate.
/// Building that candidate used to be a fresh five-vector [`Query`] clone
/// per decision, which E10 showed dominating the cold path (formulation was
/// ~9 of ~16 µs). The scratch keeps one candidate buffer alive across all
/// decisions of one [`formulate_with`] call — and, held inside
/// [`crate::OptimizerScratch`], across every `optimize_with` call of a
/// worker thread: candidates are written into the buffer with
/// allocation-reusing `clone_from`s, and an *adopted* candidate is swapped
/// with the working query instead of moved, so the steady state allocates
/// nothing per decision.
#[derive(Debug, Default)]
pub struct FormulationScratch {
    /// The candidate buffer the next decision is formulated into.
    candidate: Query,
}

impl FormulationScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs query formulation over the post-transformation table.
///
/// Allocates fresh working memory; repeated callers (the optimizer's
/// pipeline) should hold a [`FormulationScratch`] and use
/// [`formulate_with`].
pub fn formulate(
    catalog: &Catalog,
    original: &Query,
    table: &TransformationTable,
    config: &OptimizerConfig,
    oracle: &dyn ProfitOracle,
) -> FormulationResult {
    formulate_with(catalog, original, table, config, oracle, &mut FormulationScratch::new())
}

/// [`formulate`] against reusable candidate buffers.
pub fn formulate_with(
    catalog: &Catalog,
    original: &Query,
    table: &TransformationTable,
    config: &OptimizerConfig,
    oracle: &dyn ProfitOracle,
    scratch: &mut FormulationScratch,
) -> FormulationResult {
    let mut final_tags = Vec::new();
    let mut dropped_redundant = Vec::new();
    let mut introduced = Vec::new();

    // Working query: original shape, predicates re-derived from the table.
    let mut q = original.clone();
    q.join_predicates.clear();
    q.selective_predicates.clear();

    let mut optional: Vec<Predicate> = Vec::new();
    let mut imperative: Vec<Predicate> = Vec::new();
    for (col, pred) in table.pool().iter() {
        let Some(tag) = table.final_tag(col) else {
            continue;
        };
        final_tags.push((pred.clone(), tag));
        let is_introduced = table.presence(col) == ColumnPresence::Introduced;
        if is_introduced && tag != PredicateTag::Redundant {
            introduced.push(pred.clone());
        }
        match tag {
            PredicateTag::Redundant => dropped_redundant.push(pred.clone()),
            PredicateTag::Imperative => {
                push_pred(&mut q, pred);
                imperative.push(pred.clone());
            }
            PredicateTag::Optional => {
                push_pred(&mut q, pred);
                optional.push(pred.clone());
            }
        }
    }

    // ---- class elimination (before optional filtering, as in §3.4) -------
    let mut eliminated_classes = Vec::new();
    if config.class_elimination {
        while let Ok(graph) = q.graph(catalog) {
            let mut eliminated_this_round = false;
            for class in graph.dangling_classes() {
                // "The absence of imperative predicates on its attributes is
                // a necessary … condition for an object class to be
                // eliminated" (§3.4).
                if imperative.iter().any(|p| p.involves(class)) {
                    continue;
                }
                if !eliminable(catalog, &q, class) {
                    continue;
                }
                without_class_into(catalog, &q, class, &mut scratch.candidate);
                if oracle.eliminate_class(&q, &scratch.candidate, class) {
                    // Any predicates that vanish with the class were optional.
                    for p in q.predicates() {
                        if p.involves(class) {
                            optional.retain(|o| o != &p);
                            introduced.retain(|i| i != &p);
                        }
                    }
                    // Adopt the candidate; the old working query becomes the
                    // next decision's buffer.
                    std::mem::swap(&mut q, &mut scratch.candidate);
                    eliminated_classes.push(class);
                    eliminated_this_round = true;
                    break; // graph changed; recompute
                }
            }
            if !eliminated_this_round {
                break;
            }
        }
    }

    // ---- optional predicate retention (cost–benefit) ----------------------
    let mut dropped_unprofitable = Vec::new();
    let mut retained_optional = Vec::new();
    for pred in optional {
        if !q.contains_predicate(&pred) {
            continue; // removed together with an eliminated class
        }
        without_predicate_into(&q, &pred, &mut scratch.candidate);
        if oracle.retain_optional(&q, &scratch.candidate, &pred) {
            retained_optional.push(pred);
        } else {
            dropped_unprofitable.push(pred.clone());
            std::mem::swap(&mut q, &mut scratch.candidate);
        }
    }
    introduced.retain(|p| q.contains_predicate(p));

    // ---- projection bindings ----------------------------------------------
    // An entailed equality (present in the query or introduced — regardless
    // of retention) pins the projected value.
    for proj in q.projections.iter_mut() {
        if proj.binding.is_some() {
            continue;
        }
        for (col, pred) in table.pool().iter() {
            if !matches!(table.presence(col), ColumnPresence::InQuery | ColumnPresence::Introduced)
            {
                continue;
            }
            if let Predicate::Sel(s) = pred {
                if s.attr == proj.attr && s.op == sqo_query::CompOp::Eq {
                    proj.binding = Some(s.value.clone());
                    break;
                }
            }
        }
    }

    // ---- contradiction detection -------------------------------------------
    // Every predicate that is present in the original query or was
    // introduced by a constraint holds on *all* result rows (introduction is
    // sound by entailment). If any two of them are mutually exclusive, the
    // result is provably empty.
    let entailed: Vec<&Predicate> = table
        .pool()
        .iter()
        .filter(|(col, _)| {
            matches!(table.presence(*col), ColumnPresence::InQuery | ColumnPresence::Introduced)
        })
        .map(|(_, p)| p)
        .collect();
    let mut provably_empty = false;
    'outer: for (i, a) in entailed.iter().enumerate() {
        if let Predicate::Sel(sa) = a {
            if sa.is_unsatisfiable() {
                provably_empty = true;
                break;
            }
            for b in &entailed[i + 1..] {
                if let Predicate::Sel(sb) = b {
                    if sa.contradicts(sb) {
                        provably_empty = true;
                        break 'outer;
                    }
                }
            }
        }
    }

    FormulationResult {
        query: q,
        eliminated_classes,
        dropped_redundant,
        dropped_unprofitable,
        retained_optional,
        introduced,
        final_tags,
        provably_empty,
    }
}

fn push_pred(q: &mut Query, pred: &Predicate) {
    match pred {
        Predicate::Sel(s) => {
            if !q.selective_predicates.contains(s) {
                q.selective_predicates.push(s.clone());
            }
        }
        Predicate::Join(j) => {
            if !q.join_predicates.contains(j) {
                q.join_predicates.push(*j);
            }
        }
    }
}

/// Field-wise `clone_from`: `out` becomes a copy of `src` while reusing
/// `out`'s heap allocations (the derived `Clone` would allocate all five
/// vectors afresh).
fn clone_query_into(src: &Query, out: &mut Query) {
    out.projections.clone_from(&src.projections);
    out.join_predicates.clone_from(&src.join_predicates);
    out.selective_predicates.clone_from(&src.selective_predicates);
    out.relationships.clone_from(&src.relationships);
    out.classes.clone_from(&src.classes);
}

/// Writes `q` minus `pred` into the reusable buffer `out`.
fn without_predicate_into(q: &Query, pred: &Predicate, out: &mut Query) {
    clone_query_into(q, out);
    match pred {
        Predicate::Sel(s) => out.selective_predicates.retain(|x| x != s),
        Predicate::Join(j) => out.join_predicates.retain(|x| x != j),
    }
}

/// Structural soundness of eliminating `class` from `q` (DESIGN.md §3.4):
/// 1. nothing projected from the class;
/// 2. no imperative predicate touches it (checked by the caller, which owns
///    the tag bookkeeping);
/// 3. the class hangs off exactly one relationship, and the *surviving* end
///    is to-one and total: every surviving object has exactly one partner,
///    so dropping the join preserves multiplicity.
fn eliminable(catalog: &Catalog, q: &Query, class: ClassId) -> bool {
    if q.projections.iter().any(|p| p.attr.class == class) {
        return false;
    }
    // Exactly one incident relationship.
    let incident: Vec<_> = q
        .relationships
        .iter()
        .copied()
        .filter(|&r| catalog.relationship(r).map(|def| def.involves(class)).unwrap_or(false))
        .collect();
    if incident.len() != 1 {
        return false;
    }
    let rel = incident[0];
    let Ok(def) = catalog.relationship(rel) else {
        return false;
    };
    let Some(survivor) = def.other_end(class) else {
        return false;
    };
    if survivor == class {
        return false; // self-relationship: never eliminable
    }
    let Some(surviving_end) = def.end_for(survivor) else {
        return false;
    };
    surviving_end.multiplicity == sqo_catalog::Multiplicity::One && surviving_end.total
}

/// Writes `q` minus the class, its single relationship and its predicates
/// into the reusable buffer `out`.
fn without_class_into(catalog: &Catalog, q: &Query, class: ClassId, out: &mut Query) {
    clone_query_into(q, out);
    out.classes.retain(|&c| c != class);
    out.relationships
        .retain(|&r| catalog.relationship(r).map(|def| !def.involves(class)).unwrap_or(true));
    out.selective_predicates.retain(|s| s.attr.class != class);
    out.join_predicates.retain(|j| !j.involves(class));
    out.projections.retain(|p| p.attr.class != class);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizerConfig;
    use crate::oracle::{DropAllOracle, StructuralOracle};
    use crate::table::TransformationTable;
    use crate::transform::run_transformations;
    use sqo_catalog::example::figure21;
    use sqo_constraints::{figure22, ConstraintStore, StoreOptions};
    use sqo_query::{CompOp, QueryBuilder, QueryExt};
    use std::sync::Arc;

    fn fig23_setup() -> (Arc<Catalog>, ConstraintStore, Query) {
        let catalog = Arc::new(figure21().unwrap());
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        )
        .unwrap();
        let query = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        (catalog, store, query)
    }

    fn run_formulation(
        catalog: &Catalog,
        store: &ConstraintStore,
        query: &Query,
        oracle: &dyn ProfitOracle,
    ) -> FormulationResult {
        let relevant = store.relevant_for(query);
        let config = OptimizerConfig::paper();
        let mut table =
            TransformationTable::build(catalog, store, &relevant, query, config.match_policy);
        run_transformations(&mut table, &config);
        formulate(catalog, query, &table, &config, oracle)
    }

    /// End-to-end §3.5: the formulated query must equal the paper's
    /// transformed query, including the supplier elimination and the bound
    /// projection.
    #[test]
    fn figure23_final_query() {
        let (catalog, store, query) = fig23_setup();
        let res = run_formulation(&catalog, &store, &query, &StructuralOracle);
        let supplier = catalog.class_id("supplier").unwrap();
        assert_eq!(res.eliminated_classes, vec![supplier]);
        let printed = res.query.display(&catalog).to_string();
        assert_eq!(
            printed,
            "(SELECT {vehicle.vehicle_no, cargo.desc=\"frozen food\", cargo.quantity} {} \
             {vehicle.desc = \"refrigerated truck\", cargo.desc = \"frozen food\"} \
             {collects} {vehicle, cargo})"
        );
        res.query.validate(&catalog).expect("formulated query must validate");
        // Bookkeeping: p2 was optional and vanished with the class; p3 was
        // introduced and retained.
        assert_eq!(res.retained_optional.len(), 1);
        assert_eq!(res.introduced.len(), 1);
    }

    #[test]
    fn drop_all_oracle_strips_optionals_but_keeps_imperatives() {
        let (catalog, store, query) = fig23_setup();
        let res = run_formulation(&catalog, &store, &query, &DropAllOracle);
        // Imperative vehicle.desc remains; optional cargo.desc dropped.
        let printed = res.query.display(&catalog).to_string();
        assert!(printed.contains("vehicle.desc = \"refrigerated truck\""), "{printed}");
        assert!(!printed.contains("cargo.desc = \"frozen food\","), "{printed}");
        assert!(res.retained_optional.is_empty());
        // The projection binding survives: entailment does not depend on
        // retention.
        assert!(printed.contains("cargo.desc=\"frozen food\""), "{printed}");
        res.query.validate(&catalog).unwrap();
    }

    #[test]
    fn class_with_projection_not_eliminated() {
        let (catalog, store, mut query) = fig23_setup();
        // Project something from supplier: it must survive.
        query
            .projections
            .push(sqo_query::Projection::plain(catalog.attr_ref("supplier", "address").unwrap()));
        let res = run_formulation(&catalog, &store, &query, &StructuralOracle);
        assert!(res.eliminated_classes.is_empty());
        assert!(query.classes.iter().all(|c| res.query.classes.contains(c)));
    }

    #[test]
    fn class_with_imperative_predicate_not_eliminated() {
        let (catalog, store, mut query) = fig23_setup();
        // supplier.address has no constraint justifying it: stays imperative.
        query.selective_predicates.push(sqo_query::SelPredicate::new(
            catalog.attr_ref("supplier", "address").unwrap(),
            CompOp::Eq,
            sqo_catalog::Value::str("1 Food St"),
        ));
        let res = run_formulation(&catalog, &store, &query, &StructuralOracle);
        assert!(res.eliminated_classes.is_empty());
        let printed = res.query.display(&catalog).to_string();
        assert!(printed.contains("supplier.address"), "{printed}");
    }

    #[test]
    fn non_dangling_class_not_eliminated() {
        let (catalog, store, _) = fig23_setup();
        // cargo sits between supplier and vehicle: degree 2, never dangling.
        let query = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("supplier.name")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        let res = run_formulation(&catalog, &store, &query, &StructuralOracle);
        assert!(!res.eliminated_classes.contains(&catalog.class_id("cargo").unwrap()));
    }

    #[test]
    fn elimination_requires_total_to_one_link() {
        // drives: vehicle (to-one, total) -> driver. Eliminating `driver`
        // from a vehicle query is sound; eliminating `vehicle` from a driver
        // query is NOT (a driver may drive many vehicles).
        let (catalog, store, _) = fig23_setup();
        let q_vehicle =
            QueryBuilder::new(&catalog).select("vehicle.vehicle_no").via("drives").build().unwrap();
        let res = run_formulation(&catalog, &store, &q_vehicle, &StructuralOracle);
        assert_eq!(res.eliminated_classes, vec![catalog.class_id("driver").unwrap()]);

        let q_driver =
            QueryBuilder::new(&catalog).select("driver.name").via("drives").build().unwrap();
        let res2 = run_formulation(&catalog, &store, &q_driver, &StructuralOracle);
        assert!(
            res2.eliminated_classes.is_empty(),
            "vehicle end is not total/to-one from driver's side"
        );
    }

    #[test]
    fn contradiction_with_introduced_predicate_is_detected() {
        // c1 entails cargo.desc = "frozen food" for refrigerated trucks; a
        // query that also demands cargo.desc = "durian" can never return a
        // row, and formulation must notice without any data access.
        let (catalog, store, mut query) = fig23_setup();
        query
            .selective_predicates
            .retain(|s| catalog.qualified_attr_name(s.attr) != "supplier.name");
        query.classes.retain(|&c| c != catalog.class_id("supplier").unwrap());
        query.relationships.retain(|&r| r != catalog.rel_id("supplies").unwrap());
        query.selective_predicates.push(sqo_query::SelPredicate::new(
            catalog.attr_ref("cargo", "desc").unwrap(),
            CompOp::Eq,
            sqo_catalog::Value::str("durian"),
        ));
        let res = run_formulation(&catalog, &store, &query, &StructuralOracle);
        assert!(res.provably_empty, "{res:?}");
        // The sane query from the other tests is satisfiable.
        let (catalog, store, query) = fig23_setup();
        let res = run_formulation(&catalog, &store, &query, &StructuralOracle);
        assert!(!res.provably_empty);
    }

    #[test]
    fn redundant_predicates_always_dropped_without_oracle_consultation() {
        let catalog = Arc::new(figure21().unwrap());
        let c = sqo_constraints::ConstraintBuilder::new(&catalog, "intra")
            .when("manager.name", CompOp::Eq, "alice")
            .then("manager.rank", CompOp::Eq, "research staff member")
            .build()
            .unwrap();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            vec![c],
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        )
        .unwrap();
        let query = QueryBuilder::new(&catalog)
            .select("manager.clearance")
            .filter("manager.name", CompOp::Eq, "alice")
            .filter("manager.rank", CompOp::Eq, "research staff member")
            .build()
            .unwrap();
        let res = run_formulation(&catalog, &store, &query, &StructuralOracle);
        assert_eq!(res.dropped_redundant.len(), 1);
        let printed = res.query.display(&catalog).to_string();
        assert!(!printed.contains("rank"), "{printed}");
        assert!(printed.contains("manager.name = \"alice\""), "{printed}");
    }
}
