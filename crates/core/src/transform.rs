//! The tentative-transformation engine (§3.2 *Update Transformation Queue* +
//! §3.3 *Transformation*).
//!
//! The engine never touches the query. It walks the transformation table:
//! every eligible constraint fires exactly once, lowering (or assigning) its
//! consequent's tag per Tables 3.1/3.2 and flipping `AbsentAntecedent` cells
//! to `PresentAntecedent`, which may enable further constraints. Because tag
//! assignment is a lattice meet and enabling is monotone, the fixpoint is
//! unique — the order of transformations is immaterial (property-tested in
//! `tests/order_immaterial.rs`).

use sqo_constraints::{ConstraintClass, ConstraintId};
use sqo_query::Predicate;

use crate::config::{OptimizerConfig, TagPolicy};
use crate::queue::{ActionKind, TransformationQueue};
use crate::table::TransformationTable;
use crate::tag::{CellState, ColumnPresence, PredicateTag};

/// What a fired constraint did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformationKind {
    /// Lowered the tag of a predicate present in the original query
    /// (restriction elimination).
    RestrictionElimination,
    /// Introduced a predicate on a non-indexed attribute.
    RestrictionIntroduction,
    /// Introduced a predicate on an indexed attribute (index introduction).
    IndexIntroduction,
    /// Lowered the tag of an already-introduced predicate further.
    TagLowering,
}

/// One applied transformation, for the report.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformationRecord {
    pub constraint: ConstraintId,
    pub predicate: Predicate,
    pub kind: TransformationKind,
    pub from: Option<PredicateTag>,
    pub to: PredicateTag,
}

/// Outcome of the transformation phase.
#[derive(Debug, Clone, Default)]
pub struct TransformLog {
    pub applied: Vec<TransformationRecord>,
    /// Rows popped that turned out to be no-ops (already at target tag).
    pub noops: usize,
    /// True if the §4 budget stopped the loop early.
    pub budget_exhausted: bool,
}

/// The target tag a row's firing assigns, per the configured policy
/// (Tables 3.1/3.2 vs. the §3.3 pseudocode).
pub fn target_tag(
    classification: ConstraintClass,
    consequent_indexed: bool,
    policy: TagPolicy,
) -> PredicateTag {
    match (policy, classification) {
        (TagPolicy::Tables, ConstraintClass::Intra) => {
            if consequent_indexed {
                PredicateTag::Optional
            } else {
                PredicateTag::Redundant
            }
        }
        (TagPolicy::Pseudocode, ConstraintClass::Intra) => PredicateTag::Redundant,
        (_, ConstraintClass::Inter) => PredicateTag::Optional,
    }
}

/// Pending action of a row given the current table state; `None` when the
/// row cannot contribute (and should leave `C`).
fn pending_action(
    table: &TransformationTable,
    ri: usize,
    config: &OptimizerConfig,
) -> Option<ActionKind> {
    let row = table.row(ri);
    if !row.active || !table.antecedents_satisfied(ri) {
        return None;
    }
    let target = target_tag(row.classification, row.consequent_indexed, config.tag_policy);
    match table.cell(ri, row.consequent) {
        CellState::Tagged(current) => {
            if current.can_lower_to(target) {
                Some(ActionKind::RestrictionElimination)
            } else {
                None
            }
        }
        CellState::AbsentConsequent => Some(if row.consequent_indexed {
            ActionKind::IndexIntroduction
        } else {
            ActionKind::RestrictionIntroduction
        }),
        _ => None,
    }
}

/// Whether a row might become eligible later (antecedents still missing but
/// the consequent could still be lowered). Rows that can never contribute
/// are deactivated — the paper's "remove cᵢ from C".
fn could_become_eligible(table: &TransformationTable, ri: usize, config: &OptimizerConfig) -> bool {
    let row = table.row(ri);
    if !row.active {
        return false;
    }
    let target = target_tag(row.classification, row.consequent_indexed, config.tag_policy);
    match table.cell(ri, row.consequent) {
        CellState::Tagged(current) => current.can_lower_to(target),
        CellState::AbsentConsequent => true,
        _ => false,
    }
}

/// Reusable working memory of [`run_transformations_with`]: the queue and
/// the wake-up lists, kept warm across optimizations so the fixpoint loop
/// performs no transient allocation.
#[derive(Debug)]
pub struct TransformScratch {
    queue: TransformationQueue,
    woken_cols: Vec<sqo_constraints::PredId>,
    recheck: Vec<usize>,
}

impl Default for TransformScratch {
    fn default() -> Self {
        Self {
            queue: TransformationQueue::new(crate::config::QueueDiscipline::Fifo, 0),
            woken_cols: Vec::new(),
            recheck: Vec::new(),
        }
    }
}

impl TransformScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the transformation loop to its fixpoint (or budget), §3.2 + §3.3.
pub fn run_transformations(
    table: &mut TransformationTable,
    config: &OptimizerConfig,
) -> TransformLog {
    run_transformations_with(table, config, &mut TransformScratch::default())
}

/// [`run_transformations`] against recycled working memory — the hot-path
/// variant the serving layer drives through `OptimizerScratch`.
pub fn run_transformations_with(
    table: &mut TransformationTable,
    config: &OptimizerConfig,
    scratch: &mut TransformScratch,
) -> TransformLog {
    let mut log = TransformLog::default();
    let queue = &mut scratch.queue;
    queue.reset(config.queue, table.row_count());

    // Initial Update-Transformation-Queue pass.
    for ri in 0..table.row_count() {
        match pending_action(table, ri, config) {
            Some(kind) => queue.push(ri, kind),
            None => {
                if !could_become_eligible(table, ri, config) {
                    table.deactivate(ri);
                }
            }
        }
    }

    let mut budget = config.budget;
    while let Some(ri) = queue.pop() {
        // Re-validate at pop time: earlier transformations may have lowered
        // this row's consequent already ("some cₖ ahead of cᵢ in Q has
        // already lowered t(cᵢ, pⱼ) — ignore cᵢ then").
        let Some(_) = pending_action(table, ri, config) else {
            log.noops += 1;
            table.deactivate(ri);
            continue;
        };
        if let Some(b) = budget.as_mut() {
            if *b == 0 {
                log.budget_exhausted = true;
                break;
            }
            *b -= 1;
        }

        let row = table.row(ri);
        let (constraint, classification, consequent_indexed, col) =
            (row.constraint, row.classification, row.consequent_indexed, row.consequent);
        let target = target_tag(classification, consequent_indexed, config.tag_policy);
        let presence_before = table.presence(col);
        let tag_before = table.tag(col);

        // Apply: introduce if absent, then meet-assign the tag.
        let woken_cols = &mut scratch.woken_cols;
        woken_cols.clear();
        if !matches!(presence_before, ColumnPresence::InQuery | ColumnPresence::Introduced) {
            table.introduce_into(col, config.match_policy, woken_cols);
        }
        let final_tag = table.assign_tag(col, target);

        let kind = match presence_before {
            ColumnPresence::InQuery => TransformationKind::RestrictionElimination,
            ColumnPresence::Introduced => TransformationKind::TagLowering,
            ColumnPresence::Absent | ColumnPresence::Implied => {
                if consequent_indexed {
                    TransformationKind::IndexIntroduction
                } else {
                    TransformationKind::RestrictionIntroduction
                }
            }
        };
        log.applied.push(TransformationRecord {
            constraint,
            predicate: table.predicate(col).clone(),
            kind,
            from: tag_before,
            to: final_tag,
        });
        table.deactivate(ri);

        // Update Q: wake rows watching any column whose presence changed,
        // and re-examine rows whose consequent is this column (they may now
        // be unable to contribute). Eligibility depends only on a row's own
        // consequent cell, and `assign_tag` touched exactly the cells of
        // `col`'s consequent rows — so the targeted recheck is equivalent to
        // a full sweep of `C`.
        for &wcol in woken_cols.iter().chain(std::iter::once(&col)) {
            for &watcher in table.rows_watching(wcol) {
                if let Some(kind) = pending_action(table, watcher, config) {
                    queue.push(watcher, kind);
                }
            }
        }
        scratch.recheck.clear();
        scratch.recheck.extend_from_slice(table.rows_with_consequent(col));
        for &rj in &scratch.recheck {
            if table.row(rj).active && !could_become_eligible(table, rj, config) {
                table.deactivate(rj);
            }
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::{example::figure21, Catalog};
    use sqo_constraints::{figure22, ConstraintStore, StoreOptions};
    use sqo_query::{CompOp, Query, QueryBuilder};
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, ConstraintStore, Query) {
        let catalog = Arc::new(figure21().unwrap());
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        )
        .unwrap();
        let query = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        (catalog, store, query)
    }

    /// The full §3.5 walk-through: transformation #1 introduces p3 via c1
    /// (optional, inter-class), which enables c2; transformation #2 lowers
    /// p2 from imperative to optional.
    #[test]
    fn section_3_5_transformation_sequence() {
        let (catalog, store, query) = setup();
        let relevant = store.relevant_for(&query);
        let config = OptimizerConfig::paper();
        let mut table =
            TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
        let log = run_transformations(&mut table, &config);
        assert_eq!(log.applied.len(), 2, "{log:?}");
        assert!(!log.budget_exhausted);

        let names: Vec<&str> =
            log.applied.iter().map(|r| store.constraint(r.constraint).name.as_str()).collect();
        assert_eq!(names, vec!["c1", "c2"]);
        assert_eq!(log.applied[0].kind, TransformationKind::RestrictionIntroduction);
        assert_eq!(log.applied[0].to, PredicateTag::Optional);
        assert_eq!(log.applied[1].kind, TransformationKind::RestrictionElimination);
        assert_eq!(log.applied[1].from, Some(PredicateTag::Imperative));
        assert_eq!(log.applied[1].to, PredicateTag::Optional);

        // Final state (the paper's closing matrix): p1 imperative,
        // p2 optional, p3 optional+introduced.
        use sqo_constraints::PredId;
        assert_eq!(table.final_tag(PredId(0)), Some(PredicateTag::Imperative));
        assert_eq!(table.final_tag(PredId(1)), Some(PredicateTag::Optional));
        assert_eq!(table.final_tag(PredId(2)), Some(PredicateTag::Optional));
        assert_eq!(table.presence(PredId(2)), ColumnPresence::Introduced);
    }

    #[test]
    fn intra_class_constraint_lowers_to_redundant() {
        let catalog = Arc::new(figure21().unwrap());
        // Intra constraint with a non-indexed consequent.
        let c = sqo_constraints::ConstraintBuilder::new(&catalog, "intra")
            .when("manager.name", CompOp::Eq, "alice")
            .then("manager.rank", CompOp::Eq, "research staff member")
            .build()
            .unwrap();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            vec![c],
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        )
        .unwrap();
        let query = QueryBuilder::new(&catalog)
            .select("manager.clearance")
            .filter("manager.name", CompOp::Eq, "alice")
            .filter("manager.rank", CompOp::Eq, "research staff member")
            .build()
            .unwrap();
        let relevant = store.relevant_for(&query);
        let config = OptimizerConfig::paper();
        let mut table =
            TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
        let log = run_transformations(&mut table, &config);
        assert_eq!(log.applied.len(), 1);
        assert_eq!(log.applied[0].kind, TransformationKind::RestrictionElimination);
        assert_eq!(log.applied[0].to, PredicateTag::Redundant);
    }

    #[test]
    fn indexed_intra_consequent_stays_optional_under_tables_policy() {
        let catalog = Arc::new(figure21().unwrap());
        // manager.name is hash-indexed; rank -> name is intra with an indexed
        // consequent.
        let c = sqo_constraints::ConstraintBuilder::new(&catalog, "ix")
            .when("manager.rank", CompOp::Eq, "research staff member")
            .then("manager.name", CompOp::Eq, "alice")
            .build()
            .unwrap();
        let mk_store = |cs| {
            ConstraintStore::build(
                Arc::clone(&catalog),
                cs,
                StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
            )
            .unwrap()
        };
        let store = mk_store(vec![c]);
        let query = QueryBuilder::new(&catalog)
            .select("manager.clearance")
            .filter("manager.rank", CompOp::Eq, "research staff member")
            .build()
            .unwrap();
        let relevant = store.relevant_for(&query);
        // Tables policy: introduction lands at optional (index introduction).
        let config = OptimizerConfig::paper();
        let mut table =
            TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
        let log = run_transformations(&mut table, &config);
        assert_eq!(log.applied[0].kind, TransformationKind::IndexIntroduction);
        assert_eq!(log.applied[0].to, PredicateTag::Optional);
        // Pseudocode policy: redundant.
        let config2 =
            OptimizerConfig { tag_policy: TagPolicy::Pseudocode, ..OptimizerConfig::paper() };
        let mut table2 =
            TransformationTable::build(&catalog, &store, &relevant, &query, config2.match_policy);
        let log2 = run_transformations(&mut table2, &config2);
        assert_eq!(log2.applied[0].to, PredicateTag::Redundant);
    }

    #[test]
    fn budget_stops_early() {
        let (catalog, store, query) = setup();
        let relevant = store.relevant_for(&query);
        let config = OptimizerConfig::budgeted(1);
        let mut table =
            TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
        let log = run_transformations(&mut table, &config);
        assert_eq!(log.applied.len(), 1);
        assert!(log.budget_exhausted);
    }

    #[test]
    fn chain_of_three_fires_transitively() {
        // a=1 present; c1: a=1 -> b=2 ; c2: b=2 -> c=3. No closure: the
        // chain must still resolve through queue wake-ups.
        let catalog = {
            let mut b = Catalog::builder();
            b.class(
                "t",
                vec![
                    sqo_catalog::AttributeDef::new("a", sqo_catalog::DataType::Int),
                    sqo_catalog::AttributeDef::new("b", sqo_catalog::DataType::Int),
                    sqo_catalog::AttributeDef::new("c", sqo_catalog::DataType::Int),
                ],
            )
            .unwrap();
            Arc::new(b.build().unwrap())
        };
        let c1 = sqo_constraints::ConstraintBuilder::new(&catalog, "c1")
            .when("t.a", CompOp::Eq, 1i64)
            .then("t.b", CompOp::Eq, 2i64)
            .build()
            .unwrap();
        let c2 = sqo_constraints::ConstraintBuilder::new(&catalog, "c2")
            .when("t.b", CompOp::Eq, 2i64)
            .then("t.c", CompOp::Eq, 3i64)
            .build()
            .unwrap();
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            vec![c1, c2],
            StoreOptions { materialize_closure: false, ..StoreOptions::paper_defaults() },
        )
        .unwrap();
        let query = QueryBuilder::new(&catalog)
            .select("t.c")
            .filter("t.a", CompOp::Eq, 1i64)
            .build()
            .unwrap();
        let relevant = store.relevant_for(&query);
        let config = OptimizerConfig::paper();
        let mut table =
            TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
        let log = run_transformations(&mut table, &config);
        assert_eq!(log.applied.len(), 2, "both introductions fire: {log:?}");
    }

    #[test]
    fn fired_constraints_never_refire() {
        let (catalog, store, query) = setup();
        let relevant = store.relevant_for(&query);
        let config = OptimizerConfig::paper();
        let mut table =
            TransformationTable::build(&catalog, &store, &relevant, &query, config.match_policy);
        let log = run_transformations(&mut table, &config);
        let mut fired: Vec<ConstraintId> = log.applied.iter().map(|r| r.constraint).collect();
        fired.sort_unstable();
        fired.dedup();
        assert_eq!(fired.len(), log.applied.len(), "each constraint fires at most once");
        // And the table is quiescent: re-running changes nothing.
        let log2 = run_transformations(&mut table, &config);
        assert!(log2.applied.is_empty());
    }
}
