//! Optimization reports: everything the benchmarks and examples need to
//! know about what one `optimize` call did, including per-phase timings
//! (the quantities behind the paper's Figure 4.1).

use std::time::Duration;

use sqo_catalog::{Catalog, ClassId};
use sqo_query::Predicate;

use crate::formulate::FormulationResult;
use crate::tag::PredicateTag;
use crate::transform::TransformLog;

/// Wall-clock timings of the algorithm's phases.
///
/// §4: "Subtracting the I/O retrieval time, the maximum time spent on actual
/// transformation…" — hence retrieval is kept separate from transformation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Fetching constraint groups + relevance filtering.
    pub retrieval: Duration,
    /// Building the transformation table (§3.1).
    pub initialization: Duration,
    /// Queue updates + transformations (§3.2, §3.3).
    pub transformation: Duration,
    /// Query formulation (§3.4).
    pub formulation: Duration,
}

impl PhaseTimings {
    /// Total optimization time (the paper's "total query transformation
    /// time (including retrieval of semantic constraints)").
    pub fn total(&self) -> Duration {
        self.retrieval + self.initialization + self.transformation + self.formulation
    }

    /// Time excluding retrieval (the paper's "actual transformation" time).
    pub fn excluding_retrieval(&self) -> Duration {
        self.initialization + self.transformation + self.formulation
    }
}

/// Full account of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// Constraints relevant to the query (rows of the table).
    pub relevant_constraints: usize,
    /// Distinct predicates in play (columns of the table).
    pub distinct_predicates: usize,
    /// Classes in the input query.
    pub query_classes: usize,
    pub transformations: TransformLog,
    pub eliminated_classes: Vec<ClassId>,
    pub retained_optional: Vec<Predicate>,
    pub dropped_redundant: Vec<Predicate>,
    pub dropped_unprofitable: Vec<Predicate>,
    pub introduced: Vec<Predicate>,
    pub final_tags: Vec<(Predicate, PredicateTag)>,
    /// The entailed predicates are contradictory: the answer is empty and
    /// execution can be skipped entirely.
    pub provably_empty: bool,
    pub timings: PhaseTimings,
}

impl OptimizationReport {
    pub(crate) fn from_parts(
        relevant_constraints: usize,
        distinct_predicates: usize,
        query_classes: usize,
        transformations: TransformLog,
        formulation: FormulationResult,
        timings: PhaseTimings,
    ) -> Self {
        Self {
            relevant_constraints,
            distinct_predicates,
            query_classes,
            transformations,
            eliminated_classes: formulation.eliminated_classes,
            retained_optional: formulation.retained_optional,
            dropped_redundant: formulation.dropped_redundant,
            dropped_unprofitable: formulation.dropped_unprofitable,
            introduced: formulation.introduced,
            final_tags: formulation.final_tags,
            provably_empty: formulation.provably_empty,
            timings,
        }
    }

    /// Whether the optimizer changed the query at all.
    pub fn changed_query(&self) -> bool {
        !self.transformations.applied.is_empty()
            || !self.eliminated_classes.is_empty()
            || !self.dropped_redundant.is_empty()
            || !self.dropped_unprofitable.is_empty()
    }

    /// Human-oriented summary.
    pub fn render(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "semantic optimization: {} relevant constraints, {} predicates, {} transformations\n",
            self.relevant_constraints,
            self.distinct_predicates,
            self.transformations.applied.len()
        ));
        for t in &self.transformations.applied {
            out.push_str(&format!(
                "  [{:?}] {} -> {}\n",
                t.kind,
                t.predicate.display(catalog),
                t.to
            ));
        }
        if !self.eliminated_classes.is_empty() {
            let names: Vec<&str> =
                self.eliminated_classes.iter().map(|&c| catalog.class_name(c)).collect();
            out.push_str(&format!("  eliminated classes: {}\n", names.join(", ")));
        }
        for p in &self.dropped_redundant {
            out.push_str(&format!("  dropped redundant: {}\n", p.display(catalog)));
        }
        for p in &self.dropped_unprofitable {
            out.push_str(&format!("  dropped unprofitable: {}\n", p.display(catalog)));
        }
        if self.provably_empty {
            out.push_str("  PROVABLY EMPTY: entailed predicates contradict; skip execution\n");
        }
        out.push_str(&format!(
            "  timings: retrieval {:?}, init {:?}, transform {:?}, formulate {:?}\n",
            self.timings.retrieval,
            self.timings.initialization,
            self.timings.transformation,
            self.timings.formulation
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_sum() {
        let t = PhaseTimings {
            retrieval: Duration::from_millis(5),
            initialization: Duration::from_millis(1),
            transformation: Duration::from_millis(2),
            formulation: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(11));
        assert_eq!(t.excluding_retrieval(), Duration::from_millis(6));
    }
}
