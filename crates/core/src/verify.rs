//! Post-optimization verification.
//!
//! An independent check that an [`Optimized`] outcome respects the
//! soundness contract, usable in debug builds, tests and audits:
//!
//! 1. the optimized query validates against the catalog;
//! 2. no new classes or relationships appear;
//! 3. projections are preserved attribute-for-attribute;
//! 4. every original predicate is either retained or *accounted for* — its
//!    final tag shows it optional/redundant (i.e. a constraint justified the
//!    removal) or it vanished with an eliminated class;
//! 5. every predicate added to the query corresponds to an applied
//!    introduction recorded in the transformation log.
//!
//! The verifier deliberately re-derives everything from the report rather
//! than trusting formulation internals.

use sqo_catalog::Catalog;
use sqo_query::{Predicate, Query};

use crate::optimizer::Optimized;
use crate::tag::PredicateTag;

/// Outcome of verification: empty `issues` means all checks passed.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    pub issues: Vec<String>,
}

impl VerificationReport {
    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Verifies `out` against the `original` query it was produced from.
pub fn verify_optimization(
    catalog: &Catalog,
    original: &Query,
    out: &Optimized,
) -> VerificationReport {
    let mut report = VerificationReport::default();
    let optimized = &out.query;
    let mut issue = |s: String| report.issues.push(s);

    // 1. Well-formedness.
    if let Err(e) = optimized.validate(catalog) {
        issue(format!("optimized query does not validate: {e}"));
    }

    // 2. No new classes / relationships; eliminated ones are reported.
    for c in &optimized.classes {
        if !original.has_class(*c) {
            issue(format!("class {} appeared out of nowhere", catalog.class_name(*c)));
        }
    }
    for r in &optimized.relationships {
        if !original.has_relationship(*r) {
            issue(format!("relationship {} appeared out of nowhere", catalog.rel_name(*r)));
        }
    }
    for c in &original.classes {
        let gone = !optimized.has_class(*c);
        let reported = out.report.eliminated_classes.contains(c);
        if gone != reported {
            issue(format!(
                "class {} elimination bookkeeping mismatch (gone={gone}, reported={reported})",
                catalog.class_name(*c)
            ));
        }
    }

    // 3. Projections: same attributes, in order (bindings may be added).
    if original.projections.len() != optimized.projections.len() {
        issue(format!(
            "projection count changed: {} -> {}",
            original.projections.len(),
            optimized.projections.len()
        ));
    } else {
        for (a, b) in original.projections.iter().zip(&optimized.projections) {
            if a.attr != b.attr {
                issue(format!(
                    "projection changed: {} -> {}",
                    catalog.qualified_attr_name(a.attr),
                    catalog.qualified_attr_name(b.attr)
                ));
            }
        }
    }

    // 4. Every original predicate retained or justified.
    for pred in original.predicates() {
        if optimized.contains_predicate(&pred) {
            continue;
        }
        let class_eliminated =
            pred.classes().iter().any(|c| out.report.eliminated_classes.contains(c));
        let tag = out.report.final_tags.iter().find(|(p, _)| p == &pred).map(|(_, t)| *t);
        let justified = matches!(tag, Some(PredicateTag::Optional | PredicateTag::Redundant));
        if !class_eliminated && !justified {
            issue(format!(
                "predicate {} was dropped without justification (tag {tag:?})",
                pred.display(catalog)
            ));
        }
    }

    // 5. Every added predicate is a recorded introduction.
    let added: Vec<Predicate> =
        optimized.predicates().filter(|p| !original.contains_predicate(p)).collect();
    for pred in added {
        let recorded = out.report.transformations.applied.iter().any(|t| t.predicate == pred);
        if !recorded {
            issue(format!(
                "predicate {} was added without a recorded transformation",
                pred.display(catalog)
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::SemanticOptimizer;
    use crate::oracle::{DropAllOracle, StructuralOracle};
    use sqo_catalog::example::figure21;
    use sqo_constraints::{figure22, ConstraintStore, StoreOptions};
    use sqo_query::parse_query;
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, ConstraintStore, Query) {
        let catalog = Arc::new(figure21().unwrap());
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions::paper_defaults(),
        )
        .unwrap();
        let query = parse_query(
            r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
                {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
                {collects, supplies} {supplier, cargo, vehicle})"#,
            &catalog,
        )
        .unwrap();
        (catalog, store, query)
    }

    #[test]
    fn figure23_outcome_verifies() {
        let (catalog, store, query) = setup();
        let out = SemanticOptimizer::new(&store).optimize(&query, &StructuralOracle).unwrap();
        let report = verify_optimization(&catalog, &query, &out);
        assert!(report.is_ok(), "{:?}", report.issues);
    }

    #[test]
    fn drop_all_outcome_verifies() {
        let (catalog, store, query) = setup();
        let out = SemanticOptimizer::new(&store).optimize(&query, &DropAllOracle).unwrap();
        let report = verify_optimization(&catalog, &query, &out);
        assert!(report.is_ok(), "{:?}", report.issues);
    }

    #[test]
    fn tampering_is_detected() {
        let (catalog, store, query) = setup();
        let mut out = SemanticOptimizer::new(&store).optimize(&query, &StructuralOracle).unwrap();
        // Forge an unjustified predicate drop.
        out.query.selective_predicates.clear();
        let report = verify_optimization(&catalog, &query, &out);
        assert!(!report.is_ok());
        assert!(
            report.issues.iter().any(|i| i.contains("dropped without justification")),
            "{:?}",
            report.issues
        );
    }

    #[test]
    fn forged_addition_is_detected() {
        let (catalog, store, query) = setup();
        let mut out = SemanticOptimizer::new(&store).optimize(&query, &StructuralOracle).unwrap();
        out.query.selective_predicates.push(sqo_query::SelPredicate::new(
            catalog.attr_ref("cargo", "quantity").unwrap(),
            sqo_query::CompOp::Gt,
            sqo_catalog::Value::Int(5),
        ));
        let report = verify_optimization(&catalog, &query, &out);
        assert!(!report.is_ok());
        assert!(report
            .issues
            .iter()
            .any(|i| i.contains("added without a recorded transformation")));
    }

    #[test]
    fn forged_class_is_detected() {
        let (catalog, store, query) = setup();
        let mut out = SemanticOptimizer::new(&store).optimize(&query, &StructuralOracle).unwrap();
        out.query.classes.push(catalog.class_id("engine").unwrap());
        let report = verify_optimization(&catalog, &query, &out);
        assert!(!report.is_ok());
    }

    #[test]
    fn verification_passes_across_several_query_shapes() {
        let (catalog, store, _) = setup();
        let queries = [
            r#"(SELECT {cargo.code} {} {cargo.desc = "frozen food"} {supplies} {supplier, cargo})"#,
            r#"(SELECT {driver.name} {} {} {drives} {driver, vehicle})"#,
            r#"(SELECT {employee.name} {} {department.name = "development"} {belongs_to} {employee, department})"#,
        ];
        let optimizer = SemanticOptimizer::new(&store);
        for src in queries {
            let q = parse_query(src, &catalog).unwrap();
            let out = optimizer.optimize(&q, &StructuralOracle).unwrap();
            let report = verify_optimization(&catalog, &q, &out);
            assert!(report.is_ok(), "{src}: {:?}", report.issues);
        }
    }
}
