//! The profitability oracle interface (§3.4).
//!
//! Query formulation delegates its two cost–benefit decisions to "the cost
//! model in the conventional query optimizer". `sqo-core` stays independent
//! of any particular engine by asking a [`ProfitOracle`]; `sqo-exec`
//! provides the real, plan-cost-based implementation
//! (`CostBasedOracle`), while the structural oracles here serve tests and
//! engine-free use.

use std::fmt;

use sqo_catalog::ClassId;
use sqo_query::{Predicate, Query};

/// Cost–benefit decisions for query formulation.
pub trait ProfitOracle: fmt::Debug {
    /// Whether retaining the optional predicate `pred` is profitable.
    /// `with` is the current candidate query containing `pred`; `without` is
    /// the same query with `pred` removed.
    fn retain_optional(&self, with: &Query, without: &Query, pred: &Predicate) -> bool;

    /// Whether eliminating `class` is profitable. `without` is the candidate
    /// query with the class (and its relationship and predicates) removed.
    /// Structural soundness has already been established by the caller.
    fn eliminate_class(&self, with: &Query, without: &Query, class: ClassId) -> bool;
}

/// Keeps every optional predicate and performs every sound class
/// elimination. Engine-free; useful as the "optimistic" baseline and in
/// unit tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct StructuralOracle;

impl ProfitOracle for StructuralOracle {
    fn retain_optional(&self, _with: &Query, _without: &Query, _pred: &Predicate) -> bool {
        true
    }

    fn eliminate_class(&self, _with: &Query, _without: &Query, _class: ClassId) -> bool {
        true
    }
}

/// Drops every optional predicate (reclassifies them redundant) and performs
/// every sound class elimination — the "pessimistic" counterpart.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropAllOracle;

impl ProfitOracle for DropAllOracle {
    fn retain_optional(&self, _with: &Query, _without: &Query, _pred: &Predicate) -> bool {
        false
    }

    fn eliminate_class(&self, _with: &Query, _without: &Query, _class: ClassId) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_oracle_is_optimistic() {
        let q = Query::new();
        let p = Predicate::sel(
            sqo_catalog::AttrRef::new(ClassId(0), sqo_catalog::AttrId(0)),
            sqo_query::CompOp::Eq,
            1i64,
        );
        assert!(StructuralOracle.retain_optional(&q, &q, &p));
        assert!(StructuralOracle.eliminate_class(&q, &q, ClassId(0)));
    }

    #[test]
    fn drop_all_oracle_is_pessimistic_about_predicates() {
        let q = Query::new();
        let p = Predicate::sel(
            sqo_catalog::AttrRef::new(ClassId(0), sqo_catalog::AttrId(0)),
            sqo_query::CompOp::Eq,
            1i64,
        );
        assert!(!DropAllOracle.retain_optional(&q, &q, &p));
        assert!(DropAllOracle.eliminate_class(&q, &q, ClassId(0)));
    }
}
