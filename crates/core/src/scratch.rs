//! Reusable optimizer working memory.
//!
//! One [`SemanticOptimizer::optimize`](crate::SemanticOptimizer::optimize)
//! call allocates a per-query predicate pool, the transformation matrix,
//! watcher lists and the transformation queue — cheap once, expensive at
//! serving rates where every cache miss and every epoch bump re-runs the
//! whole pipeline. An [`OptimizerScratch`] owns all of that storage and is
//! threaded through
//! [`SemanticOptimizer::optimize_with`](crate::SemanticOptimizer::optimize_with):
//! after the first few queries warm its buffers up to the workload's table
//! shape, repeated optimization performs near-zero transient allocation.
//!
//! A scratch is plain mutable state — keep one per worker thread (the
//! serving layer uses a thread-local), never share one across threads.

use sqo_constraints::{ConstraintId, RetrievalScratch};

use crate::formulate::FormulationScratch;
use crate::table::TableBuffers;
use crate::transform::TransformScratch;

/// All reusable buffers of one optimization pipeline: indexed constraint
/// retrieval, transformation-table construction, the transformation
/// fixpoint loop, and formulation's candidate queries.
#[derive(Debug, Default)]
pub struct OptimizerScratch {
    pub(crate) retrieval: RetrievalScratch,
    pub(crate) relevant: Vec<ConstraintId>,
    pub(crate) table: TableBuffers,
    pub(crate) transform: TransformScratch,
    pub(crate) formulation: FormulationScratch,
}

impl OptimizerScratch {
    pub fn new() -> Self {
        Self::default()
    }
}
