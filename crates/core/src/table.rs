//! The transformation table `T` (§3.1).
//!
//! Rows are the relevant constraints `C`, columns the predicate set `P`
//! (query predicates plus all predicates of relevant constraints, interned
//! into a per-query [`PredicatePool`] so structural duplicates share a
//! column). Cells hold [`CellState`]s; alongside the matrix the table tracks
//! each column's [`ColumnPresence`] and current [`PredicateTag`].
//!
//! Two deliberate refinements over the paper's literal pseudocode, both
//! required to make the claimed order-immateriality a theorem (DESIGN.md §3):
//!
//! 1. tag assignment is a *meet* (`min`) on the lattice, so concurrent
//!    lowerings from different constraints can never raise a tag;
//! 2. all consequent cells of a column stay synchronized (the paper leaves
//!    `AbsentConsequent` rows stale after an introduction).
//!
//! Because the table is rebuilt for every optimized query — the dominant
//! allocation source of the cold path — construction can run against a
//! reusable [`TableBuffers`] ([`TransformationTable::build_with`] /
//! [`TransformationTable::recycle`]): every vector and the predicate pool
//! keep their capacity across queries, so a warmed-up serving thread builds
//! tables with near-zero transient allocation.

use sqo_catalog::Catalog;
use sqo_constraints::{ConstraintClass, ConstraintId, ConstraintStore, PredId, PredicatePool};
use sqo_query::{Predicate, Query};

use crate::config::MatchPolicy;
use crate::tag::{CellState, ColumnPresence, PredicateTag};

/// One row: a relevant constraint compiled against the table's own pool.
#[derive(Debug, Clone)]
pub struct Row {
    pub constraint: ConstraintId,
    pub antecedents: Vec<PredId>,
    pub consequent: PredId,
    pub classification: ConstraintClass,
    /// Whether the consequent predicate sits on an indexed attribute —
    /// the branch condition of Tables 3.1/3.2.
    pub consequent_indexed: bool,
    /// Still a member of `C` (not yet fired or discarded).
    pub active: bool,
}

/// Recyclable storage for [`TransformationTable`]: the per-query pool and
/// every backing vector, kept warm between optimizations. Obtain one with
/// `TableBuffers::default()`, thread it through
/// [`TransformationTable::build_with`], and return the table's storage with
/// [`TransformationTable::recycle`] when the table is no longer needed.
#[derive(Debug, Default)]
pub struct TableBuffers {
    pool: PredicatePool,
    rows: Vec<Row>,
    presence: Vec<ColumnPresence>,
    tags: Vec<Option<PredicateTag>>,
    cells: Vec<CellState>,
    query_columns: Vec<PredId>,
    antecedent_rows: Vec<Vec<usize>>,
    consequent_rows: Vec<Vec<usize>>,
}

/// The transformation table.
#[derive(Debug)]
pub struct TransformationTable {
    rows: Vec<Row>,
    pool: PredicatePool,
    presence: Vec<ColumnPresence>,
    tags: Vec<Option<PredicateTag>>,
    cells: Vec<CellState>,
    cols: usize,
    /// Columns of the original query's predicates, in query order.
    query_columns: Vec<PredId>,
    /// antecedent column -> rows listing it (for incremental wake-ups).
    /// Indexed by column; may be longer than `cols` when recycled from a
    /// wider query (the excess lists are empty).
    antecedent_rows: Vec<Vec<usize>>,
    /// consequent column -> rows whose consequent it is (for tag
    /// synchronization and targeted eligibility rechecks).
    consequent_rows: Vec<Vec<usize>>,
}

impl TransformationTable {
    /// Builds and initializes the table for `query` and the given relevant
    /// constraints — the paper's *Initialization* algorithm. Allocates
    /// fresh storage; use [`TransformationTable::build_with`] on a hot path.
    pub fn build(
        catalog: &Catalog,
        store: &ConstraintStore,
        relevant: &[ConstraintId],
        query: &Query,
        match_policy: MatchPolicy,
    ) -> Self {
        Self::build_with(
            catalog,
            store,
            relevant,
            query,
            match_policy,
            &mut TableBuffers::default(),
        )
    }

    /// [`TransformationTable::build`] against recycled storage: all backing
    /// vectors and the predicate pool are taken from `buf` (clearing, not
    /// freeing, their contents). Pass the table back through
    /// [`TransformationTable::recycle`] to reuse the storage again.
    pub fn build_with(
        catalog: &Catalog,
        store: &ConstraintStore,
        relevant: &[ConstraintId],
        query: &Query,
        match_policy: MatchPolicy,
        buf: &mut TableBuffers,
    ) -> Self {
        let mut pool = std::mem::take(&mut buf.pool);
        pool.clear();
        // Query predicates first: stable, paper-like column order.
        let mut query_columns = std::mem::take(&mut buf.query_columns);
        query_columns.clear();
        query_columns.extend(query.predicates().map(|p| pool.intern(p)));
        let mut rows = std::mem::take(&mut buf.rows);
        rows.clear();
        rows.extend(relevant.iter().map(|&id| {
            let c = store.constraint(id);
            Row {
                constraint: id,
                antecedents: c.antecedents.iter().cloned().map(|p| pool.intern(p)).collect(),
                consequent: pool.intern(c.consequent.clone()),
                classification: c.classification(),
                consequent_indexed: c.consequent.is_indexed(catalog),
                active: true,
            }
        }));
        let cols = pool.len();

        // Column presence and initial tags: every query predicate starts
        // imperative ("unless proven otherwise, we have to assume that all
        // the predicates contribute to the results").
        let mut presence = std::mem::take(&mut buf.presence);
        presence.clear();
        presence.resize(cols, ColumnPresence::Absent);
        let mut tags = std::mem::take(&mut buf.tags);
        tags.clear();
        tags.resize(cols, None);
        for &qc in &query_columns {
            presence[qc.index()] = ColumnPresence::InQuery;
            tags[qc.index()] = Some(PredicateTag::Imperative);
        }
        if match_policy == MatchPolicy::Implication {
            for (id, pred) in pool.iter() {
                if presence[id.index()] == ColumnPresence::Absent && query.satisfies_predicate(pred)
                {
                    presence[id.index()] = ColumnPresence::Implied;
                }
            }
        }

        // Cells and the column → rows postings.
        let mut cells = std::mem::take(&mut buf.cells);
        cells.clear();
        cells.resize(rows.len() * cols, CellState::NotPresent);
        let mut antecedent_rows = std::mem::take(&mut buf.antecedent_rows);
        let mut consequent_rows = std::mem::take(&mut buf.consequent_rows);
        for list in antecedent_rows.iter_mut().chain(consequent_rows.iter_mut()) {
            list.clear();
        }
        if antecedent_rows.len() < cols {
            antecedent_rows.resize_with(cols, Vec::new);
        }
        if consequent_rows.len() < cols {
            consequent_rows.resize_with(cols, Vec::new);
        }
        for (ri, row) in rows.iter().enumerate() {
            for &a in &row.antecedents {
                antecedent_rows[a.index()].push(ri);
                cells[ri * cols + a.index()] = if presence[a.index()].satisfies_antecedent() {
                    CellState::PresentAntecedent
                } else {
                    CellState::AbsentAntecedent
                };
            }
            let cj = row.consequent;
            consequent_rows[cj.index()].push(ri);
            cells[ri * cols + cj.index()] = match presence[cj.index()] {
                ColumnPresence::InQuery => CellState::Tagged(PredicateTag::Imperative),
                // Implied-but-absent consequents are introduction candidates,
                // same as absent ones (the introduction will be vacuous and
                // the cost model will reject it, but chaining through it is
                // legitimate).
                ColumnPresence::Implied | ColumnPresence::Absent => CellState::AbsentConsequent,
                // invariant: `presence` is freshly derived from the query in
                // this constructor; Introduced only appears via later
                // `introduce` calls on the built table.
                ColumnPresence::Introduced => unreachable!("nothing introduced at init"),
            };
        }

        Self {
            rows,
            pool,
            presence,
            tags,
            cells,
            cols,
            query_columns,
            antecedent_rows,
            consequent_rows,
        }
    }

    /// Returns the table's backing storage to `buf` for the next
    /// [`TransformationTable::build_with`] call.
    pub fn recycle(self, buf: &mut TableBuffers) {
        buf.pool = self.pool;
        buf.rows = self.rows;
        buf.presence = self.presence;
        buf.tags = self.tags;
        buf.cells = self.cells;
        buf.query_columns = self.query_columns;
        buf.antecedent_rows = self.antecedent_rows;
        buf.consequent_rows = self.consequent_rows;
    }

    // ---- basic accessors ---------------------------------------------------

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn column_count(&self) -> usize {
        self.cols
    }

    pub fn row(&self, ri: usize) -> &Row {
        &self.rows[ri]
    }

    pub fn rows(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows.iter().enumerate()
    }

    pub fn pool(&self) -> &PredicatePool {
        &self.pool
    }

    pub fn cell(&self, ri: usize, col: PredId) -> CellState {
        self.cells[ri * self.cols + col.index()]
    }

    pub fn presence(&self, col: PredId) -> ColumnPresence {
        self.presence[col.index()]
    }

    pub fn tag(&self, col: PredId) -> Option<PredicateTag> {
        self.tags[col.index()]
    }

    pub fn query_columns(&self) -> &[PredId] {
        &self.query_columns
    }

    pub fn deactivate(&mut self, ri: usize) {
        self.rows[ri].active = false;
    }

    /// Rows that list `col` among their antecedents.
    pub fn rows_watching(&self, col: PredId) -> &[usize] {
        self.antecedent_rows.get(col.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Rows whose consequent is `col` — the only rows whose eligibility can
    /// change when `col`'s tag moves.
    pub fn rows_with_consequent(&self, col: PredId) -> &[usize] {
        self.consequent_rows.get(col.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All antecedents of row `ri` present/implied/introduced?
    pub fn antecedents_satisfied(&self, ri: usize) -> bool {
        self.rows[ri].antecedents.iter().all(|a| self.presence[a.index()].satisfies_antecedent())
    }

    // ---- mutation (the transformation primitives) -------------------------

    /// Introduces the column's predicate into the (virtual) query.
    /// Returns columns whose presence changed (for wake-ups).
    pub fn introduce(&mut self, col: PredId, match_policy: MatchPolicy) -> Vec<PredId> {
        let mut changed = Vec::new();
        self.introduce_into(col, match_policy, &mut changed);
        changed
    }

    /// Allocation-free [`TransformationTable::introduce`]: columns whose
    /// presence changed are written into `changed` (cleared first).
    pub fn introduce_into(
        &mut self,
        col: PredId,
        match_policy: MatchPolicy,
        changed: &mut Vec<PredId>,
    ) {
        changed.clear();
        if self.presence[col.index()] == ColumnPresence::Absent
            || self.presence[col.index()] == ColumnPresence::Implied
        {
            self.presence[col.index()] = ColumnPresence::Introduced;
            self.mark_antecedents_present(col);
            changed.push(col);
        }
        if match_policy == MatchPolicy::Implication {
            // The introduced predicate may satisfy weaker antecedents
            // elsewhere in the pool.
            let start = changed.len();
            let introduced = self.pool.get(col);
            changed.extend(
                self.pool
                    .iter()
                    .filter(|(id, q)| {
                        *id != col
                            && self.presence[id.index()] == ColumnPresence::Absent
                            && introduced.implies(q)
                    })
                    .map(|(id, _)| id),
            );
            let woken: &[PredId] = &changed[start..];
            for &w in woken {
                self.presence[w.index()] = ColumnPresence::Implied;
                self.mark_antecedents_present(w);
            }
        }
    }

    fn mark_antecedents_present(&mut self, col: PredId) {
        let cols = self.cols;
        if let Some(rows) = self.antecedent_rows.get(col.index()) {
            for &ri in rows {
                let idx = ri * cols + col.index();
                if self.cells[idx] == CellState::AbsentAntecedent {
                    self.cells[idx] = CellState::PresentAntecedent;
                }
            }
        }
    }

    /// Meet-assigns `new_tag` to the column and synchronizes every consequent
    /// cell of that column. Returns the resulting tag.
    pub fn assign_tag(&mut self, col: PredId, new_tag: PredicateTag) -> PredicateTag {
        let merged = match self.tags[col.index()] {
            Some(old) => old.min(new_tag),
            None => new_tag,
        };
        self.tags[col.index()] = Some(merged);
        let cols = self.cols;
        if let Some(rows) = self.consequent_rows.get(col.index()) {
            for &ri in rows {
                let idx = ri * cols + col.index();
                match self.cells[idx] {
                    CellState::Tagged(_) | CellState::AbsentConsequent => {
                        self.cells[idx] = CellState::Tagged(merged);
                    }
                    _ => {}
                }
            }
        }
        merged
    }

    /// Renders the matrix in the paper's §3.5 style.
    pub fn render(&self, catalog: &Catalog, store: &ConstraintStore) -> String {
        let mut out = String::new();
        out.push_str("T =\n");
        // Header.
        out.push_str("        ");
        for (id, _) in self.pool.iter() {
            out.push_str(&format!("{:>4} ", format!("p{}", id.0 + 1)));
        }
        out.push('\n');
        for (ri, row) in self.rows.iter().enumerate() {
            let name = &store.constraint(row.constraint).name;
            out.push_str(&format!("{name:>6}: "));
            for (id, _) in self.pool.iter() {
                out.push_str(&format!("{:>4} ", self.cell(ri, id).code()));
            }
            if !row.active {
                out.push_str("  (inactive)");
            }
            out.push('\n');
        }
        out.push_str("where\n");
        for (id, pred) in self.pool.iter() {
            out.push_str(&format!(
                "  p{} = {}   [{:?}, tag {:?}]\n",
                id.0 + 1,
                pred.display(catalog),
                self.presence(id),
                self.tag(id)
            ));
        }
        out
    }

    /// The final classification of a predicate column for query formulation
    /// (§3.4): tagged columns report their tag; untouched query predicates
    /// stay imperative; absent columns report `None`.
    pub fn final_tag(&self, col: PredId) -> Option<PredicateTag> {
        match self.presence[col.index()] {
            ColumnPresence::InQuery | ColumnPresence::Introduced => {
                Some(self.tags[col.index()].unwrap_or(PredicateTag::Imperative))
            }
            ColumnPresence::Implied | ColumnPresence::Absent => None,
        }
    }

    /// Clones the predicate behind a column.
    pub fn predicate(&self, col: PredId) -> &Predicate {
        self.pool.get(col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_catalog::example::figure21;
    use sqo_constraints::figure22;
    use sqo_query::{CompOp, QueryBuilder};
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, ConstraintStore, Query) {
        let catalog = Arc::new(figure21().unwrap());
        // No closure: keep rows exactly c1..c5 for §3.5 comparisons.
        let store = ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            sqo_constraints::StoreOptions {
                materialize_closure: false,
                ..sqo_constraints::StoreOptions::paper_defaults()
            },
        )
        .unwrap();
        let query = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .select("cargo.desc")
            .select("cargo.quantity")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("supplier.name", CompOp::Eq, "SFI")
            .via("collects")
            .via("supplies")
            .build()
            .unwrap();
        (catalog, store, query)
    }

    /// Reproduces the exact initialization matrix of §3.5:
    /// T = (PresentAntecedent  _           AbsentConsequent)
    ///     (_                  Imperative  AbsentAntecedent)
    #[test]
    fn initialization_matches_section_3_5() {
        let (catalog, store, query) = setup();
        let relevant = store.relevant_for(&query);
        assert_eq!(relevant.len(), 2, "c1 and c2");
        let t = TransformationTable::build(
            &catalog,
            &store,
            &relevant,
            &query,
            MatchPolicy::Implication,
        );
        assert_eq!(t.row_count(), 2);
        // Columns: p1 = vehicle.desc = "refrigerated truck",
        //          p2 = supplier.name = "SFI",
        //          p3 = cargo.desc = "frozen food".
        assert_eq!(t.column_count(), 3);
        let p1 = PredId(0);
        let p2 = PredId(1);
        let p3 = PredId(2);
        // Row order follows `relevant`; find c1's row.
        let c1_row =
            t.rows().position(|(_, r)| store.constraint(r.constraint).name == "c1").unwrap();
        let c2_row = 1 - c1_row;
        assert_eq!(t.cell(c1_row, p1), CellState::PresentAntecedent);
        assert_eq!(t.cell(c1_row, p2), CellState::NotPresent);
        assert_eq!(t.cell(c1_row, p3), CellState::AbsentConsequent);
        assert_eq!(t.cell(c2_row, p1), CellState::NotPresent);
        assert_eq!(t.cell(c2_row, p2), CellState::Tagged(PredicateTag::Imperative));
        assert_eq!(t.cell(c2_row, p3), CellState::AbsentAntecedent);
        // Query predicates start imperative.
        assert_eq!(t.tag(p1), Some(PredicateTag::Imperative));
        assert_eq!(t.tag(p2), Some(PredicateTag::Imperative));
        assert_eq!(t.tag(p3), None);
    }

    #[test]
    fn introduce_flips_presence_and_wakes_antecedents() {
        let (catalog, store, query) = setup();
        let relevant = store.relevant_for(&query);
        let mut t = TransformationTable::build(
            &catalog,
            &store,
            &relevant,
            &query,
            MatchPolicy::Implication,
        );
        let p3 = PredId(2);
        let c2_row =
            t.rows().position(|(_, r)| store.constraint(r.constraint).name == "c2").unwrap();
        assert!(!t.antecedents_satisfied(c2_row));
        let changed = t.introduce(p3, MatchPolicy::Implication);
        assert!(changed.contains(&p3));
        assert_eq!(t.presence(p3), ColumnPresence::Introduced);
        assert_eq!(t.cell(c2_row, p3), CellState::PresentAntecedent);
        assert!(t.antecedents_satisfied(c2_row));
    }

    #[test]
    fn assign_tag_is_monotone_meet() {
        let (catalog, store, query) = setup();
        let relevant = store.relevant_for(&query);
        let mut t = TransformationTable::build(
            &catalog,
            &store,
            &relevant,
            &query,
            MatchPolicy::Implication,
        );
        let p2 = PredId(1);
        assert_eq!(t.assign_tag(p2, PredicateTag::Optional), PredicateTag::Optional);
        // A later attempt to "raise" is absorbed by the meet.
        assert_eq!(t.assign_tag(p2, PredicateTag::Imperative), PredicateTag::Optional);
        assert_eq!(t.assign_tag(p2, PredicateTag::Redundant), PredicateTag::Redundant);
        assert_eq!(t.tag(p2), Some(PredicateTag::Redundant));
    }

    #[test]
    fn final_tags_default_to_imperative_for_query_predicates() {
        let (catalog, store, query) = setup();
        let relevant = store.relevant_for(&query);
        let t = TransformationTable::build(
            &catalog,
            &store,
            &relevant,
            &query,
            MatchPolicy::Implication,
        );
        for &qc in t.query_columns() {
            assert_eq!(t.final_tag(qc), Some(PredicateTag::Imperative));
        }
        // Absent constraint predicates have no final tag.
        assert_eq!(t.final_tag(PredId(2)), None);
    }

    #[test]
    fn render_contains_matrix_and_legend() {
        let (catalog, store, query) = setup();
        let relevant = store.relevant_for(&query);
        let t = TransformationTable::build(
            &catalog,
            &store,
            &relevant,
            &query,
            MatchPolicy::Implication,
        );
        let s = t.render(&catalog, &store);
        assert!(s.contains("PA"), "{s}");
        assert!(s.contains("AC"), "{s}");
        assert!(s.contains("cargo.desc = \"frozen food\""), "{s}");
    }

    #[test]
    fn syntactic_policy_ignores_implication() {
        let (catalog, store, _) = setup();
        // Query with a *stronger* predicate than c-antecedent would need.
        let query = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.quantity", CompOp::Gt, 20i64)
            .build()
            .unwrap();
        let c = sqo_constraints::ConstraintBuilder::new(&catalog, "cx")
            .when("cargo.quantity", CompOp::Gt, 10i64)
            .then("cargo.desc", CompOp::Eq, "bulk")
            .build()
            .unwrap();
        let store2 = ConstraintStore::build(
            Arc::clone(&catalog),
            vec![c],
            sqo_constraints::StoreOptions {
                materialize_closure: false,
                ..sqo_constraints::StoreOptions::paper_defaults()
            },
        )
        .unwrap();
        let relevant = store2.relevant_for(&query);
        assert_eq!(relevant.len(), 1);
        let t_imp = TransformationTable::build(
            &catalog,
            &store2,
            &relevant,
            &query,
            MatchPolicy::Implication,
        );
        assert!(t_imp.antecedents_satisfied(0), "quantity > 20 implies quantity > 10");
        let t_syn = TransformationTable::build(
            &catalog,
            &store2,
            &relevant,
            &query,
            MatchPolicy::Syntactic,
        );
        assert!(!t_syn.antecedents_satisfied(0));
        let _ = store.len(); // keep `store` used
    }

    /// Recycled buffers must reproduce byte-identical tables: build twice
    /// through one `TableBuffers` (interleaving a differently-shaped query)
    /// and compare against a fresh build.
    #[test]
    fn recycled_buffers_build_identical_tables() {
        let (catalog, store, query) = setup();
        let other = QueryBuilder::new(&catalog)
            .select("cargo.code")
            .filter("cargo.quantity", CompOp::Gt, 20i64)
            .build()
            .unwrap();
        let relevant = store.relevant_for(&query);
        let relevant_other = store.relevant_for(&other);
        let mut buf = TableBuffers::default();
        for _ in 0..3 {
            let wide = TransformationTable::build_with(
                &catalog,
                &store,
                &relevant,
                &query,
                MatchPolicy::Implication,
                &mut buf,
            );
            let fresh = TransformationTable::build(
                &catalog,
                &store,
                &relevant,
                &query,
                MatchPolicy::Implication,
            );
            assert_eq!(wide.row_count(), fresh.row_count());
            assert_eq!(wide.column_count(), fresh.column_count());
            for ri in 0..wide.row_count() {
                for c in 0..wide.column_count() {
                    assert_eq!(wide.cell(ri, PredId(c as u32)), fresh.cell(ri, PredId(c as u32)));
                }
            }
            for c in 0..wide.column_count() {
                let col = PredId(c as u32);
                assert_eq!(wide.presence(col), fresh.presence(col));
                assert_eq!(wide.tag(col), fresh.tag(col));
                assert_eq!(wide.rows_watching(col), fresh.rows_watching(col));
                assert_eq!(wide.rows_with_consequent(col), fresh.rows_with_consequent(col));
                assert_eq!(wide.predicate(col), fresh.predicate(col));
            }
            assert_eq!(wide.query_columns(), fresh.query_columns());
            wide.recycle(&mut buf);
            // A narrower query in between must not leave stale state behind.
            let narrow = TransformationTable::build_with(
                &catalog,
                &store,
                &relevant_other,
                &other,
                MatchPolicy::Implication,
                &mut buf,
            );
            assert_eq!(narrow.row_count(), relevant_other.len());
            narrow.recycle(&mut buf);
        }
    }
}
