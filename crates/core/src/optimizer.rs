//! The semantic query optimizer facade — Figure 3.1's four components wired
//! together:
//!
//! ```text
//! Initialization -> Update Transformation Queue <-> Transformation
//!                -> Formulate Transformed Query
//! ```

use std::sync::Arc;
use std::time::Instant;

use sqo_catalog::Catalog;
use sqo_constraints::ConstraintStore;
use sqo_query::{Query, QueryError};

use crate::config::OptimizerConfig;
use crate::formulate::formulate_with;
use crate::oracle::ProfitOracle;
use crate::report::{OptimizationReport, PhaseTimings};
use crate::scratch::OptimizerScratch;
use crate::table::TransformationTable;
use crate::transform::run_transformations_with;

/// The optimized query plus the full report.
#[derive(Debug, Clone)]
pub struct Optimized {
    pub query: Query,
    pub report: OptimizationReport,
}

/// How the optimizer holds its constraint store: borrowed for the classic
/// single-shot library use, or owned (`Arc`) so the optimizer can live
/// inside long-lived, thread-shared service state without a lifetime tying
/// it to a stack frame.
#[derive(Debug)]
enum StoreHandle<'a> {
    Borrowed(&'a ConstraintStore),
    Shared(Arc<ConstraintStore>),
}

impl StoreHandle<'_> {
    fn get(&self) -> &ConstraintStore {
        match self {
            StoreHandle::Borrowed(s) => s,
            StoreHandle::Shared(s) => s,
        }
    }
}

/// The semantic query optimizer.
///
/// Holds a reference to the (shared, precompiled) constraint store; each
/// [`SemanticOptimizer::optimize`] call is independent and thread-safe.
#[derive(Debug)]
pub struct SemanticOptimizer<'a> {
    store: StoreHandle<'a>,
    config: OptimizerConfig,
}

impl<'a> SemanticOptimizer<'a> {
    /// Paper-default configuration.
    pub fn new(store: &'a ConstraintStore) -> Self {
        Self::with_config(store, OptimizerConfig::paper())
    }

    pub fn with_config(store: &'a ConstraintStore, config: OptimizerConfig) -> Self {
        Self { store: StoreHandle::Borrowed(store), config }
    }

    /// Owned-store variant of [`SemanticOptimizer::new`]: the optimizer
    /// co-owns the store and carries no borrowed lifetime, so it can be
    /// stored in service structs and moved across threads freely.
    pub fn shared(store: Arc<ConstraintStore>) -> SemanticOptimizer<'static> {
        Self::shared_with_config(store, OptimizerConfig::paper())
    }

    /// Owned-store variant of [`SemanticOptimizer::with_config`].
    pub fn shared_with_config(
        store: Arc<ConstraintStore>,
        config: OptimizerConfig,
    ) -> SemanticOptimizer<'static> {
        SemanticOptimizer { store: StoreHandle::Shared(store), config }
    }

    /// The constraint store the optimizer consults.
    pub fn store(&self) -> &ConstraintStore {
        self.store.get()
    }

    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        self.store.get().catalog()
    }

    /// Optimizes `query` (which must validate against the catalog),
    /// delegating cost–benefit decisions to `oracle`.
    ///
    /// Allocates fresh working memory per call; long-lived callers that
    /// optimize repeatedly should hold an [`OptimizerScratch`] and use
    /// [`SemanticOptimizer::optimize_with`] instead.
    pub fn optimize(
        &self,
        query: &Query,
        oracle: &dyn ProfitOracle,
    ) -> Result<Optimized, QueryError> {
        self.optimize_with(query, oracle, &mut OptimizerScratch::new())
    }

    /// [`SemanticOptimizer::optimize`] against reusable working memory: the
    /// indexed constraint retrieval, the transformation table and the
    /// fixpoint loop all run out of `scratch`'s buffers, so a warmed-up
    /// caller pays near-zero transient allocation per query — the exact
    /// pattern the serving layer hits on every cache miss.
    pub fn optimize_with(
        &self,
        query: &Query,
        oracle: &dyn ProfitOracle,
        scratch: &mut OptimizerScratch,
    ) -> Result<Optimized, QueryError> {
        let store = self.store.get();
        let catalog = store.catalog().clone();
        query.validate(&catalog)?;

        // Phase 0: constraint retrieval via the secondary index (exact, no
        // group waste; recall-equivalent to the grouped scheme).
        let t0 = Instant::now();
        let OptimizerScratch { retrieval, relevant, table: table_buf, transform, formulation } =
            scratch;
        store.relevant_into(query, retrieval, relevant);
        let retrieval = t0.elapsed();

        // Phase 1: initialization (§3.1).
        let t1 = Instant::now();
        let mut table = TransformationTable::build_with(
            &catalog,
            store,
            relevant,
            query,
            self.config.match_policy,
            table_buf,
        );
        let initialization = t1.elapsed();

        // Phases 2+3: queue updates and transformations (§3.2, §3.3).
        let t2 = Instant::now();
        let log = run_transformations_with(&mut table, &self.config, transform);
        let transformation = t2.elapsed();

        // Phase 4: query formulation (§3.4).
        let t3 = Instant::now();
        let mut formulation_result =
            formulate_with(&catalog, query, &table, &self.config, oracle, formulation);
        let formulation = t3.elapsed();

        debug_assert!(
            formulation_result.query.validate(&catalog).is_ok(),
            "formulated query must validate: {:?}",
            formulation_result.query
        );

        let optimized_query = std::mem::take(&mut formulation_result.query);
        let report = OptimizationReport::from_parts(
            relevant.len(),
            table.column_count(),
            query.classes.len(),
            log,
            formulation_result,
            PhaseTimings { retrieval, initialization, transformation, formulation },
        );
        table.recycle(table_buf);
        Ok(Optimized { query: optimized_query, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::StructuralOracle;
    use sqo_catalog::example::figure21;
    use sqo_constraints::{figure22, StoreOptions};
    use sqo_query::{parse_query, CompOp, QueryBuilder, QueryExt};

    fn store() -> ConstraintStore {
        let catalog = Arc::new(figure21().unwrap());
        ConstraintStore::build(
            Arc::clone(&catalog),
            figure22(&catalog).unwrap(),
            StoreOptions::paper_defaults(),
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_figure23() {
        let store = store();
        let catalog = store.catalog().clone();
        let optimizer = SemanticOptimizer::new(&store);
        let query = parse_query(
            r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
                {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
                {collects, supplies} {supplier, cargo, vehicle})"#,
            &catalog,
        )
        .unwrap();
        let out = optimizer.optimize(&query, &StructuralOracle).unwrap();
        let printed = out.query.display(&catalog).to_string();
        assert!(printed.contains("{collects} {cargo, vehicle})"), "{printed}");
        assert!(printed.contains("cargo.desc=\"frozen food\""), "{printed}");
        assert!(out.report.changed_query());
        assert!(out.report.relevant_constraints >= 2);
        assert_eq!(out.report.query_classes, 3);
    }

    #[test]
    fn no_constraints_means_identity() {
        let catalog = Arc::new(figure21().unwrap());
        let empty =
            ConstraintStore::build(Arc::clone(&catalog), vec![], StoreOptions::paper_defaults())
                .unwrap();
        let optimizer = SemanticOptimizer::new(&empty);
        let query = QueryBuilder::new(&catalog)
            .select("cargo.desc")
            .filter("cargo.quantity", CompOp::Gt, 10i64)
            .build()
            .unwrap();
        let out = optimizer.optimize(&query, &StructuralOracle).unwrap();
        assert!(!out.report.changed_query());
        assert_eq!(out.query.normalized(), query.normalized());
    }

    #[test]
    fn shared_optimizer_is_send_and_matches_borrowed() {
        let store = Arc::new(store());
        let catalog = store.catalog().clone();
        let query = parse_query(
            r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
                {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
                {collects, supplies} {supplier, cargo, vehicle})"#,
            &catalog,
        )
        .unwrap();
        let borrowed = SemanticOptimizer::new(&store);
        let expected = borrowed.optimize(&query, &StructuralOracle).unwrap().query;

        // The shared optimizer has no borrowed lifetime: move it into a
        // thread, which the borrowed variant cannot do.
        let shared = SemanticOptimizer::shared(Arc::clone(&store));
        let q = query.clone();
        let got = std::thread::spawn(move || shared.optimize(&q, &StructuralOracle).unwrap().query)
            .join()
            .unwrap();
        assert_eq!(got.normalized(), expected.normalized());
        assert_eq!(SemanticOptimizer::shared(store).store().len(), 6);
    }

    #[test]
    fn invalid_query_rejected() {
        let store = store();
        let optimizer = SemanticOptimizer::new(&store);
        let bad = Query::new();
        assert!(optimizer.optimize(&bad, &StructuralOracle).is_err());
    }

    #[test]
    fn irrelevant_constraints_do_not_fire() {
        let store = store();
        let catalog = store.catalog().clone();
        let optimizer = SemanticOptimizer::new(&store);
        // Query touching only engine: none of c1..c5 reference it.
        let query = QueryBuilder::new(&catalog)
            .select("engine.capacity")
            .filter("engine.engine_no", CompOp::Eq, 5i64)
            .build()
            .unwrap();
        let out = optimizer.optimize(&query, &StructuralOracle).unwrap();
        assert_eq!(out.report.relevant_constraints, 0);
        assert!(!out.report.changed_query());
    }

    #[test]
    fn report_renders() {
        let store = store();
        let catalog = store.catalog().clone();
        let optimizer = SemanticOptimizer::new(&store);
        let query = QueryBuilder::new(&catalog)
            .select("vehicle.vehicle_no")
            .filter("vehicle.desc", CompOp::Eq, "refrigerated truck")
            .filter("cargo.desc", CompOp::Eq, "frozen food")
            .via("collects")
            .build()
            .unwrap();
        let out = optimizer.optimize(&query, &StructuralOracle).unwrap();
        let s = out.report.render(&catalog);
        assert!(s.contains("semantic optimization:"), "{s}");
    }
}
