//! Predicate tags and transformation-table cell states.
//!
//! The tag lattice is the heart of the algorithm:
//!
//! ```text
//! Imperative  >  Optional  >  Redundant
//! ```
//!
//! Transformations only ever move a predicate *down* this lattice
//! (tentatively), which is why the order of transformations is immaterial
//! and the loop terminates in `O(m·n)`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Classification of a predicate (§3.1):
/// * **Imperative** — removal would change the query's results;
/// * **Optional** — result-neutral, but may pay for itself (index use,
///   smaller intermediates); kept subject to cost–benefit analysis;
/// * **Redundant** — affects neither results nor efficiency; dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredicateTag {
    Imperative,
    Optional,
    Redundant,
}

impl PredicateTag {
    /// Lattice height: higher = stronger obligation to keep.
    fn height(self) -> u8 {
        match self {
            PredicateTag::Imperative => 2,
            PredicateTag::Optional => 1,
            PredicateTag::Redundant => 0,
        }
    }

    /// Whether a transformation may lower `self` to `target`
    /// (strictly down the lattice).
    pub fn can_lower_to(self, target: PredicateTag) -> bool {
        self.height() > target.height()
    }

    /// The lower (weaker) of two tags — used to keep tag evolution monotone
    /// when several constraints touch the same predicate.
    pub fn min(self, other: PredicateTag) -> PredicateTag {
        if self.height() <= other.height() {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for PredicateTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PredicateTag::Imperative => "imperative",
            PredicateTag::Optional => "optional",
            PredicateTag::Redundant => "redundant",
        };
        f.write_str(s)
    }
}

/// State of one cell `t(cᵢ, pⱼ)` of the transformation table (§3.1):
/// how predicate `pⱼ` relates to constraint `cᵢ` and the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellState {
    /// `_` in the paper: `pⱼ` does not appear in `cᵢ`.
    NotPresent,
    /// Antecedent of `cᵢ`, not (yet) present in the query.
    AbsentAntecedent,
    /// Antecedent of `cᵢ`, present in (or implied by) the query.
    PresentAntecedent,
    /// Consequent of `cᵢ`, absent from the query — an introduction candidate.
    AbsentConsequent,
    /// Consequent of `cᵢ`, present in or introduced into the query, carrying
    /// its current tag.
    Tagged(PredicateTag),
}

impl CellState {
    /// Compact cell rendering used by the §3.5-style table dumps.
    pub fn code(self) -> &'static str {
        match self {
            CellState::NotPresent => "_",
            CellState::AbsentAntecedent => "AA",
            CellState::PresentAntecedent => "PA",
            CellState::AbsentConsequent => "AC",
            CellState::Tagged(PredicateTag::Imperative) => "I",
            CellState::Tagged(PredicateTag::Optional) => "O",
            CellState::Tagged(PredicateTag::Redundant) => "R",
        }
    }
}

impl fmt::Display for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How a predicate column relates to the query, tracked alongside the cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnPresence {
    /// Appeared syntactically in the original query.
    InQuery,
    /// Not syntactically present, but implied by a query predicate
    /// (implication-aware matching only).
    Implied,
    /// Added by a restriction/index introduction.
    Introduced,
    /// Not present.
    Absent,
}

impl ColumnPresence {
    /// Whether the predicate can satisfy an antecedent occurrence.
    pub fn satisfies_antecedent(self) -> bool {
        !matches!(self, ColumnPresence::Absent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order() {
        use PredicateTag::*;
        assert!(Imperative.can_lower_to(Optional));
        assert!(Imperative.can_lower_to(Redundant));
        assert!(Optional.can_lower_to(Redundant));
        assert!(!Optional.can_lower_to(Imperative));
        assert!(!Redundant.can_lower_to(Optional));
        assert!(!Imperative.can_lower_to(Imperative));
    }

    #[test]
    fn min_is_meet() {
        use PredicateTag::*;
        assert_eq!(Imperative.min(Optional), Optional);
        assert_eq!(Optional.min(Redundant), Redundant);
        assert_eq!(Redundant.min(Imperative), Redundant);
        assert_eq!(Optional.min(Optional), Optional);
    }

    #[test]
    fn cell_codes_match_paper_vocabulary() {
        assert_eq!(CellState::NotPresent.code(), "_");
        assert_eq!(CellState::AbsentAntecedent.code(), "AA");
        assert_eq!(CellState::PresentAntecedent.code(), "PA");
        assert_eq!(CellState::AbsentConsequent.code(), "AC");
        assert_eq!(CellState::Tagged(PredicateTag::Imperative).code(), "I");
    }

    #[test]
    fn presence_antecedent_satisfaction() {
        assert!(ColumnPresence::InQuery.satisfies_antecedent());
        assert!(ColumnPresence::Implied.satisfies_antecedent());
        assert!(ColumnPresence::Introduced.satisfies_antecedent());
        assert!(!ColumnPresence::Absent.satisfies_antecedent());
    }
}
