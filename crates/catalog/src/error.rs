//! Catalog construction and lookup errors.

use std::fmt;

use crate::ids::{AttrId, ClassId, RelId};

/// Errors raised while building or querying a [`Catalog`](crate::Catalog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    DuplicateClass(String),
    DuplicateAttribute {
        class: String,
        attr: String,
    },
    DuplicateRelationship(String),
    UnknownClass(String),
    UnknownClassId(ClassId),
    UnknownAttribute {
        class: String,
        attr: String,
    },
    UnknownAttrId {
        class: ClassId,
        attr: AttrId,
    },
    UnknownRelationship(String),
    UnknownRelId(RelId),
    /// A subclass named a parent that was not declared before it.
    UnknownParent {
        class: String,
        parent: ClassId,
    },
    /// Inheritance cycles are rejected (is-a must be a forest).
    InheritanceCycle(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            CatalogError::DuplicateAttribute { class, attr } => {
                write!(f, "duplicate attribute `{attr}` in class `{class}`")
            }
            CatalogError::DuplicateRelationship(n) => {
                write!(f, "duplicate relationship `{n}`")
            }
            CatalogError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            CatalogError::UnknownClassId(id) => write!(f, "unknown {id}"),
            CatalogError::UnknownAttribute { class, attr } => {
                write!(f, "unknown attribute `{attr}` in class `{class}`")
            }
            CatalogError::UnknownAttrId { class, attr } => {
                write!(f, "unknown {attr} in {class}")
            }
            CatalogError::UnknownRelationship(n) => {
                write!(f, "unknown relationship `{n}`")
            }
            CatalogError::UnknownRelId(id) => write!(f, "unknown {id}"),
            CatalogError::UnknownParent { class, parent } => {
                write!(f, "class `{class}` names unknown parent {parent}")
            }
            CatalogError::InheritanceCycle(n) => {
                write!(f, "inheritance cycle involving class `{n}`")
            }
        }
    }
}

impl std::error::Error for CatalogError {}
