//! Database statistics and access-frequency tracking.
//!
//! Two consumers:
//! * the conventional cost model (`sqo-exec`) needs cardinalities, min/max,
//!   distinct counts and coarse histograms for selectivity estimation;
//! * the constraint grouping scheme (paper §3) assigns each constraint to the
//!   *least frequently accessed* class it references, so the catalog keeps a
//!   monotone per-class access counter that the optimizer bumps per query.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use serde::{Deserialize, Serialize};

use crate::ids::{AttrRef, ClassId, RelId};
use crate::types::Value;

/// Per-attribute statistics, collected by the storage loader.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttrStats {
    /// Number of rows observed.
    pub rows: u64,
    /// Number of distinct values observed.
    pub distinct: u64,
    /// Smallest and largest value (same `DataType` as the attribute).
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Most common values with their frequencies (descending), so skewed
    /// attributes (e.g. constraint-forced values) estimate honestly.
    pub mcvs: Vec<(Value, u64)>,
    /// Equi-width histogram over the `[min, max]` range for numeric
    /// attributes; empty for strings/bools (distinct count is used instead).
    pub histogram: Vec<u64>,
}

impl AttrStats {
    /// Estimated fraction of instances satisfying `attr = v` for an unknown
    /// `v` (uniformity assumption).
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            1.0
        } else {
            1.0 / self.distinct as f64
        }
    }

    /// Value-aware equality selectivity: exact for values tracked in the
    /// MCV list, uniform over the remaining mass otherwise.
    pub fn eq_selectivity_for(&self, v: &Value) -> f64 {
        if self.rows == 0 {
            return self.eq_selectivity();
        }
        if let Some((_, count)) = self.mcvs.iter().find(|(mv, _)| mv == v) {
            return *count as f64 / self.rows as f64;
        }
        let mcv_mass: u64 = self.mcvs.iter().map(|(_, c)| c).sum();
        let rest_rows = self.rows.saturating_sub(mcv_mass) as f64;
        let rest_distinct = self.distinct.saturating_sub(self.mcvs.len() as u64) as f64;
        if rest_distinct <= 0.0 {
            // Every distinct value is an MCV; an untracked value is absent.
            return 0.0;
        }
        (rest_rows / rest_distinct / self.rows as f64).clamp(0.0, 1.0)
    }

    /// Estimated fraction of instances with value strictly/inclusively below
    /// or above `v`, using min/max interpolation for ints/floats and a flat
    /// 1/3 default otherwise (the classic System R fallback).
    pub fn range_selectivity(&self, v: &Value, upper_bound: bool, inclusive: bool) -> f64 {
        const DEFAULT: f64 = 1.0 / 3.0;
        let (min, max) = match (&self.min, &self.max) {
            (Some(a), Some(b)) => (a, b),
            _ => return DEFAULT,
        };
        let to_f = |x: &Value| -> Option<f64> {
            match x {
                Value::Int(i) => Some(*i as f64),
                Value::Float(f) => Some(f.get()),
                _ => None,
            }
        };
        let (Some(lo), Some(hi), Some(point)) = (to_f(min), to_f(max), to_f(v)) else {
            return DEFAULT;
        };
        if hi <= lo {
            // Degenerate domain: a single value.
            let hit = match v.compare(min) {
                Some(Ordering::Equal) => 1.0,
                Some(Ordering::Greater) if upper_bound => 1.0,
                Some(Ordering::Less) if !upper_bound => 1.0,
                _ => 0.0,
            };
            return if inclusive { hit } else { hit.min(1.0) * 0.99 };
        }
        let frac = ((point - lo) / (hi - lo)).clamp(0.0, 1.0);
        let s = if upper_bound { frac } else { 1.0 - frac };
        // A closed bound keeps the boundary value; approximate its mass by
        // one distinct value's worth.
        let adjust = if self.distinct > 0 { 1.0 / self.distinct as f64 } else { 0.0 };
        (if inclusive { s + adjust } else { s }).clamp(0.0, 1.0)
    }
}

/// Per-class statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    pub cardinality: u64,
    pub attrs: Vec<AttrStats>,
}

/// Per-relationship statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RelStats {
    /// Total number of links.
    pub links: u64,
    /// Average links per left-side object.
    pub avg_left_fanout: f64,
    /// Average links per right-side object.
    pub avg_right_fanout: f64,
}

/// Snapshot of all statistics for a database instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    pub classes: Vec<ClassStats>,
    pub relationships: Vec<RelStats>,
}

impl StatsSnapshot {
    pub fn class(&self, id: ClassId) -> Option<&ClassStats> {
        self.classes.get(id.index())
    }

    pub fn cardinality(&self, id: ClassId) -> u64 {
        self.class(id).map(|c| c.cardinality).unwrap_or(0)
    }

    pub fn attr(&self, r: AttrRef) -> Option<&AttrStats> {
        self.class(r.class).and_then(|c| c.attrs.get(r.attr.index()))
    }

    pub fn relationship(&self, id: RelId) -> Option<&RelStats> {
        self.relationships.get(id.index())
    }
}

/// Monotone per-class access counters.
///
/// Thread-safe so a parallel benchmark driver can share one tracker. The
/// counters feed `AssignmentPolicy::LeastFrequentlyAccessed`
/// (`sqo-constraints`).
#[derive(Debug, Default)]
pub struct AccessTracker {
    counts: Vec<AtomicU64>,
}

impl AccessTracker {
    pub fn new(class_count: usize) -> Self {
        Self { counts: (0..class_count).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Records one access to each class in `classes` (one optimized query).
    pub fn record<I: IntoIterator<Item = ClassId>>(&self, classes: I) {
        for c in classes {
            if let Some(n) = self.counts.get(c.index()) {
                // ordering: independent frequency counter; grouping reads
                // tolerate any interleaving, no cross-data ordering needed.
                n.fetch_add(1, AtomicOrdering::Relaxed);
            }
        }
    }

    pub fn count(&self, class: ClassId) -> u64 {
        // ordering: advisory read of a monotone counter.
        self.counts.get(class.index()).map(|n| n.load(AtomicOrdering::Relaxed)).unwrap_or(0)
    }

    /// Pre-seeds counters (e.g. from a historical trace) so the grouping
    /// policy has signal before the first query runs.
    pub fn seed(&self, class: ClassId, count: u64) {
        if let Some(n) = self.counts.get(class.index()) {
            // ordering: pre-warm write; racing readers may see either
            // value and both are valid advisory signals.
            n.store(count, AtomicOrdering::Relaxed);
        }
    }

    /// The least frequently accessed class among `candidates`; ties break
    /// toward the smaller id for determinism. Returns `None` on empty input.
    pub fn least_accessed(&self, candidates: &[ClassId]) -> Option<ClassId> {
        candidates.iter().copied().min_by_key(|c| (self.count(*c), c.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_selectivity_uses_distinct() {
        let s = AttrStats { distinct: 4, ..Default::default() };
        assert!((s.eq_selectivity() - 0.25).abs() < 1e-12);
        let z = AttrStats::default();
        assert_eq!(z.eq_selectivity(), 1.0);
    }

    #[test]
    fn value_aware_selectivity_respects_mcvs() {
        let s = AttrStats {
            rows: 100,
            distinct: 11,
            mcvs: vec![(Value::str("hot"), 40)],
            ..Default::default()
        };
        // The skewed value gets its true frequency…
        assert!((s.eq_selectivity_for(&Value::str("hot")) - 0.4).abs() < 1e-12);
        // …while the rest share the remaining mass uniformly: 60 rows over
        // 10 remaining distinct values = 6 rows each.
        let cold = s.eq_selectivity_for(&Value::str("cold"));
        assert!((cold - 0.06).abs() < 1e-12, "cold = {cold}");
    }

    #[test]
    fn value_aware_selectivity_with_full_mcv_coverage() {
        let s = AttrStats {
            rows: 10,
            distinct: 2,
            mcvs: vec![(Value::Int(1), 7), (Value::Int(2), 3)],
            ..Default::default()
        };
        assert_eq!(s.eq_selectivity_for(&Value::Int(1)), 0.7);
        // An untracked value cannot exist: every distinct value is an MCV.
        assert_eq!(s.eq_selectivity_for(&Value::Int(9)), 0.0);
    }

    #[test]
    fn value_aware_selectivity_falls_back_without_rows() {
        let s = AttrStats { distinct: 4, ..Default::default() };
        assert!((s.eq_selectivity_for(&Value::Int(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let s = AttrStats {
            rows: 100,
            distinct: 100,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(100)),
            mcvs: vec![],
            histogram: vec![],
        };
        let sel = s.range_selectivity(&Value::Int(25), true, false);
        assert!((sel - 0.25).abs() < 0.02, "sel = {sel}");
        let sel_hi = s.range_selectivity(&Value::Int(25), false, false);
        assert!((sel_hi - 0.75).abs() < 0.02, "sel = {sel_hi}");
    }

    #[test]
    fn range_selectivity_clamps_out_of_domain() {
        let s = AttrStats {
            rows: 10,
            distinct: 10,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(10)),
            mcvs: vec![],
            histogram: vec![],
        };
        assert_eq!(s.range_selectivity(&Value::Int(-5), true, true), 0.1);
        assert_eq!(s.range_selectivity(&Value::Int(50), true, false), 1.0);
    }

    #[test]
    fn range_selectivity_falls_back_for_strings() {
        let s = AttrStats {
            rows: 10,
            distinct: 10,
            min: Some(Value::str("a")),
            max: Some(Value::str("z")),
            mcvs: vec![],
            histogram: vec![],
        };
        let sel = s.range_selectivity(&Value::str("m"), true, true);
        assert!((sel - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn access_tracker_counts_and_ranks() {
        let t = AccessTracker::new(3);
        t.record([ClassId(0), ClassId(1)]);
        t.record([ClassId(0)]);
        assert_eq!(t.count(ClassId(0)), 2);
        assert_eq!(t.count(ClassId(1)), 1);
        assert_eq!(t.count(ClassId(2)), 0);
        assert_eq!(t.least_accessed(&[ClassId(0), ClassId(1), ClassId(2)]), Some(ClassId(2)));
        // Ties break toward the smaller id.
        let t2 = AccessTracker::new(2);
        assert_eq!(t2.least_accessed(&[ClassId(1), ClassId(0)]), Some(ClassId(0)));
        assert_eq!(t2.least_accessed(&[]), None);
    }

    #[test]
    fn snapshot_accessors() {
        let snap = StatsSnapshot {
            classes: vec![ClassStats { cardinality: 7, attrs: vec![AttrStats::default()] }],
            relationships: vec![RelStats { links: 3, avg_left_fanout: 1.5, avg_right_fanout: 3.0 }],
        };
        assert_eq!(snap.cardinality(ClassId(0)), 7);
        assert_eq!(snap.cardinality(ClassId(9)), 0);
        assert!(snap.attr(AttrRef::new(ClassId(0), crate::ids::AttrId(0))).is_some());
        assert_eq!(snap.relationship(RelId(0)).unwrap().links, 3);
    }
}
