//! # sqo-catalog
//!
//! Object-oriented catalog for the `sqo` workspace — the schema substrate of
//! Pang, Lu & Ooi, *An Efficient Semantic Query Optimization Algorithm*
//! (ICDE 1991).
//!
//! The catalog records:
//! * **object classes** with typed attributes and single-inheritance `is-a`;
//! * **relationships** — named binary links with multiplicity and total-
//!   participation declarations (the figure's italic pointer attributes);
//! * **index declarations** per attribute, because the paper's tag tables
//!   branch on whether a consequent predicate is on an indexed attribute;
//! * **statistics** (cardinalities, distinct counts, min/max) for the
//!   conventional cost model, and **access-frequency counters** for the
//!   constraint grouping scheme of §3.
//!
//! Everything downstream (queries, constraints, the optimizer, storage,
//! generators) resolves names once and then works with the copyable ids
//! minted here.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod catalog;
mod error;
pub mod example;
mod ids;
mod schema;
mod stats;
mod types;

pub use catalog::{Catalog, CatalogBuilder};
pub use error::CatalogError;
pub use ids::{AttrId, AttrRef, ClassId, RelId};
pub use schema::{
    AttributeDef, ClassDef, IndexKind, Multiplicity, RelEdge, RelationshipDef, RelationshipEnd,
};
pub use stats::{AccessTracker, AttrStats, ClassStats, RelStats, StatsSnapshot};
pub use types::{DataType, Finite, Value};
