//! The paper's example database schema (Figure 2.1).
//!
//! Pointer attributes from the figure (`supplies`, `collects`, …) are modeled
//! as first-class relationships rather than stored attributes; everything
//! else follows the figure, including the `is-a` hierarchy
//! `employee <- {manager, driver}`, `driver <- supervisor`.
//!
//! Classification levels (`vehicle.class`, `driver.licenseClass`,
//! `employee.clearance`) are integers so the ordered constraint c3
//! (`licenseClass >= class`) is expressible.

use crate::catalog::Catalog;
use crate::error::CatalogError;
use crate::schema::{AttributeDef, IndexKind, Multiplicity, RelationshipEnd};
use crate::types::DataType;

/// Builds the Figure 2.1 catalog.
///
/// Indexed attributes: every `name`/`#` key gets a hash index; ordered
/// classification attributes get B-trees, mirroring the paper's concern with
/// "predicates on indexed attributes".
pub fn figure21() -> Result<Catalog, CatalogError> {
    let mut b = Catalog::builder();

    let supplier = b.class(
        "supplier",
        vec![
            AttributeDef::indexed("name", DataType::Str, IndexKind::Hash),
            AttributeDef::new("address", DataType::Str),
        ],
    )?;
    let cargo = b.class(
        "cargo",
        vec![
            AttributeDef::indexed("code", DataType::Int, IndexKind::Hash),
            AttributeDef::new("desc", DataType::Str),
            AttributeDef::new("quantity", DataType::Int),
        ],
    )?;
    let vehicle = b.class(
        "vehicle",
        vec![
            AttributeDef::indexed("vehicle_no", DataType::Int, IndexKind::Hash),
            AttributeDef::new("desc", DataType::Str),
            AttributeDef::indexed("class", DataType::Int, IndexKind::BTree),
        ],
    )?;
    let engine = b.class(
        "engine",
        vec![
            AttributeDef::indexed("engine_no", DataType::Int, IndexKind::Hash),
            AttributeDef::new("capacity", DataType::Int),
        ],
    )?;
    let employee = b.class(
        "employee",
        vec![
            AttributeDef::indexed("name", DataType::Str, IndexKind::Hash),
            AttributeDef::new("clearance", DataType::Str),
            AttributeDef::new("rank", DataType::Str),
        ],
    )?;
    let _manager = b.subclass("manager", employee, vec![])?;
    let driver = b.subclass(
        "driver",
        employee,
        vec![
            AttributeDef::indexed("license_no", DataType::Int, IndexKind::Hash),
            AttributeDef::indexed("license_class", DataType::Int, IndexKind::BTree),
            AttributeDef::new("license_date", DataType::Int),
        ],
    )?;
    let _supervisor = b.subclass("supervisor", driver, vec![])?;
    let department = b.class(
        "department",
        vec![
            AttributeDef::indexed("name", DataType::Str, IndexKind::Hash),
            AttributeDef::new("security_class", DataType::Str),
        ],
    )?;

    // Relationships (the italic pointer attributes of Figure 2.1).
    // supplies: each cargo comes from exactly one supplier; every cargo has one.
    b.many_to_one("supplies", cargo, supplier)?;
    // collects: each cargo is collected by exactly one vehicle; every cargo has one.
    b.many_to_one("collects", cargo, vehicle)?;
    // eng_comp: each vehicle has exactly one engine.
    b.many_to_one("eng_comp", vehicle, engine)?;
    // drives: each vehicle has one assigned driver; drivers may drive many vehicles.
    b.many_to_one("drives", vehicle, driver)?;
    // belongs_to: every employee belongs to exactly one department.
    b.relationship(
        "belongs_to",
        RelationshipEnd::new(employee, Multiplicity::One, true),
        RelationshipEnd::new(department, Multiplicity::Many, false),
    )?;

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure21_builds() {
        let cat = figure21().expect("figure 2.1 schema must build");
        assert_eq!(cat.class_count(), 9);
        assert_eq!(cat.relationship_count(), 5);
    }

    #[test]
    fn figure21_inheritance() {
        let cat = figure21().unwrap();
        let employee = cat.class_id("employee").unwrap();
        let driver = cat.class_id("driver").unwrap();
        let supervisor = cat.class_id("supervisor").unwrap();
        let manager = cat.class_id("manager").unwrap();
        assert!(cat.is_subclass_of(driver, employee));
        assert!(cat.is_subclass_of(supervisor, driver));
        assert!(cat.is_subclass_of(supervisor, employee));
        assert!(cat.is_subclass_of(manager, employee));
        assert!(!cat.is_subclass_of(manager, driver));
        // Inherited attribute visible under subclass.
        assert!(cat.attr_ref("supervisor", "license_class").is_ok());
        assert!(cat.attr_ref("manager", "rank").is_ok());
    }

    #[test]
    fn figure21_key_attributes_are_indexed() {
        let cat = figure21().unwrap();
        for (class, attr) in [
            ("supplier", "name"),
            ("cargo", "code"),
            ("vehicle", "vehicle_no"),
            ("engine", "engine_no"),
            ("driver", "license_class"),
        ] {
            let r = cat.attr_ref(class, attr).unwrap();
            assert!(cat.is_indexed(r), "{class}.{attr} should be indexed");
        }
        let desc = cat.attr_ref("cargo", "desc").unwrap();
        assert!(!cat.is_indexed(desc), "cargo.desc is deliberately unindexed");
    }

    #[test]
    fn figure21_relationships_are_total_on_many_side() {
        let cat = figure21().unwrap();
        let cargo = cat.class_id("cargo").unwrap();
        let supplies = cat.rel_id("supplies").unwrap();
        let def = cat.relationship(supplies).unwrap();
        // Every cargo participates: the class-elimination precondition for
        // the Figure 2.3 example (dropping `supplier`).
        assert!(def.end_for(cargo).unwrap().total);
    }
}
