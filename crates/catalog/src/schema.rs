//! Schema definitions: classes, attributes, relationships.
//!
//! The model follows the paper's object-oriented setting (Figure 2.1):
//! object classes with typed attributes, single-inheritance `is-a` links, and
//! named binary relationships implemented by pointer attributes. Indexes are
//! declared per attribute because the transformation tables of the paper
//! (Tables 3.1/3.2) branch on whether a consequent predicate is *indexed*.

use serde::{Deserialize, Serialize};

use crate::ids::{ClassId, RelId};
use crate::types::DataType;

/// The physical index maintained over an attribute, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Hash index: supports equality probes only.
    Hash,
    /// B-tree index: supports equality and range probes.
    BTree,
}

/// Declaration of a single attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeDef {
    pub name: String,
    pub ty: DataType,
    /// `Some(kind)` if the storage layer maintains an index on this attribute.
    pub index: Option<IndexKind>,
}

impl AttributeDef {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Self { name: name.into(), ty, index: None }
    }

    pub fn indexed(name: impl Into<String>, ty: DataType, kind: IndexKind) -> Self {
        Self { name: name.into(), ty, index: Some(kind) }
    }

    /// Whether predicates over this attribute can use an index at all.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }
}

/// Declaration of an object class.
///
/// When a class declares a `parent`, it inherits the parent's attributes;
/// the catalog builder materializes inherited attributes into the subclass so
/// that attribute ids remain class-local (the paper's `driver` inherits
/// `name, clearance, rank, belongsTo` from `employee`, for example).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDef {
    pub name: String,
    pub attributes: Vec<AttributeDef>,
    pub parent: Option<ClassId>,
}

/// How many objects of the far class one object may link to through a
/// relationship end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Multiplicity {
    One,
    Many,
}

/// One end of a binary relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationshipEnd {
    pub class: ClassId,
    /// Multiplicity *towards the opposite end*: a `supplier -< cargo`
    /// relationship has `Many` on the supplier end (one supplier supplies
    /// many cargoes) and `One` on the cargo end.
    pub multiplicity: Multiplicity,
    /// Total participation: every instance of `class` takes part in at least
    /// one link of this relationship. Class elimination (King's rule) is only
    /// sound when the *surviving* side participates totally; see DESIGN.md §3.4.
    pub total: bool,
}

impl RelationshipEnd {
    pub fn new(class: ClassId, multiplicity: Multiplicity, total: bool) -> Self {
        Self { class, multiplicity, total }
    }
}

/// A named binary relationship between two object classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationshipDef {
    pub name: String,
    pub left: RelationshipEnd,
    pub right: RelationshipEnd,
}

impl RelationshipDef {
    /// The classes this relationship connects (left, right).
    pub fn classes(&self) -> (ClassId, ClassId) {
        (self.left.class, self.right.class)
    }

    /// Whether the relationship touches `class`.
    pub fn involves(&self, class: ClassId) -> bool {
        self.left.class == class || self.right.class == class
    }

    /// Given one participating class, returns the class on the other end.
    /// Returns `None` if `class` does not participate. For self-relationships
    /// both ends coincide and `class` is returned.
    pub fn other_end(&self, class: ClassId) -> Option<ClassId> {
        if self.left.class == class {
            Some(self.right.class)
        } else if self.right.class == class {
            Some(self.left.class)
        } else {
            None
        }
    }

    /// The end record for `class`, if it participates.
    pub fn end_for(&self, class: ClassId) -> Option<&RelationshipEnd> {
        if self.left.class == class {
            Some(&self.left)
        } else if self.right.class == class {
            Some(&self.right)
        } else {
            None
        }
    }
}

/// A relationship occurrence as seen from one side; handy for graph walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelEdge {
    pub rel: RelId,
    pub from: ClassId,
    pub to: ClassId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_constructors() {
        let a = AttributeDef::new("desc", DataType::Str);
        assert!(!a.is_indexed());
        let b = AttributeDef::indexed("code", DataType::Int, IndexKind::Hash);
        assert!(b.is_indexed());
        assert_eq!(b.index, Some(IndexKind::Hash));
    }

    #[test]
    fn relationship_end_queries() {
        let rel = RelationshipDef {
            name: "collects".into(),
            left: RelationshipEnd::new(ClassId(0), Multiplicity::Many, true),
            right: RelationshipEnd::new(ClassId(1), Multiplicity::One, false),
        };
        assert!(rel.involves(ClassId(0)));
        assert!(rel.involves(ClassId(1)));
        assert!(!rel.involves(ClassId(2)));
        assert_eq!(rel.other_end(ClassId(0)), Some(ClassId(1)));
        assert_eq!(rel.other_end(ClassId(1)), Some(ClassId(0)));
        assert_eq!(rel.other_end(ClassId(9)), None);
        assert_eq!(rel.end_for(ClassId(1)).unwrap().multiplicity, Multiplicity::One);
    }

    #[test]
    fn self_relationship_other_end() {
        let rel = RelationshipDef {
            name: "mentors".into(),
            left: RelationshipEnd::new(ClassId(3), Multiplicity::Many, false),
            right: RelationshipEnd::new(ClassId(3), Multiplicity::One, false),
        };
        assert_eq!(rel.other_end(ClassId(3)), Some(ClassId(3)));
    }
}
