//! Strongly-typed identifiers for catalog objects.
//!
//! Every schema element is referenced by a small copyable id rather than by
//! name, so the hot optimizer loops never touch strings. Ids are only
//! meaningful relative to the [`Catalog`](crate::Catalog) that minted them.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an object class within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassId(pub u32);

/// Identifier of an attribute, local to its owning class.
///
/// Attributes are addressed as a `(ClassId, AttrId)` pair; see
/// [`AttrRef`](crate::AttrRef) for the combined form used by predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u32);

/// Identifier of a relationship within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelId(pub u32);

/// A fully-qualified attribute reference: `class.attr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrRef {
    pub class: ClassId,
    pub attr: AttrId,
}

impl AttrRef {
    pub const fn new(class: ClassId, attr: AttrId) -> Self {
        Self { class, attr }
    }
}

impl ClassId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel#{}", self.0)
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ClassId(0) < ClassId(1));
        assert!(AttrId(3) > AttrId(2));
        assert!(RelId(5) == RelId(5));
    }

    #[test]
    fn attr_ref_identity() {
        let a = AttrRef::new(ClassId(1), AttrId(2));
        let b = AttrRef::new(ClassId(1), AttrId(2));
        let c = AttrRef::new(ClassId(2), AttrId(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_is_stable() {
        let a = AttrRef::new(ClassId(1), AttrId(2));
        assert_eq!(a.to_string(), "class#1.attr#2");
    }
}
