//! Attribute data types and runtime values.
//!
//! Values are deliberately small and totally ordered within a type so that
//! predicates over them form well-behaved intervals (see
//! `sqo-query::interval`). Floats are admitted only when finite, which keeps
//! `Ord` honest without a NaN special case leaking into the optimizer.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Str,
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A finite `f64` with a total order.
///
/// Construction rejects NaN; infinities are allowed (they order naturally and
/// are useful as open interval endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Finite(f64);

impl Finite {
    /// Wraps a float, returning `None` for NaN.
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            Some(Self(v))
        }
    }

    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for Finite {}

impl PartialOrd for Finite {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finite {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is excluded at construction.
        self.0.partial_cmp(&other.0).expect("Finite never holds NaN")
    }
}

impl std::hash::Hash for Finite {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalize -0.0 and 0.0 to the same bucket to agree with Eq.
        let bits = if self.0 == 0.0 { 0u64 } else { self.0.to_bits() };
        bits.hash(state);
    }
}

/// A runtime attribute value.
///
/// Strings are reference-counted so that cloning values around the optimizer
/// and the execution engine stays cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Float(Finite),
    Str(Arc<str>),
    Bool(bool),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn float(v: f64) -> Option<Self> {
        Finite::new(v).map(Value::Float)
    }

    /// The [`DataType`] this value inhabits.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Total order within a type; `None` across types.
    ///
    /// The query layer rejects cross-type comparisons at validation time, so
    /// a `None` here indicates a bug upstream rather than user error.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// The immediate successor of this value in its domain, when the domain
    /// is discrete (`Int`, `Bool`). Used by the interval algebra to convert
    /// `x > 3` into the closed bound `x >= 4`.
    pub fn successor(&self) -> Option<Value> {
        match self {
            Value::Int(i) => i.checked_add(1).map(Value::Int),
            Value::Bool(false) => Some(Value::Bool(true)),
            _ => None,
        }
    }

    /// The immediate predecessor of this value in its domain, when discrete.
    pub fn predecessor(&self) -> Option<Value> {
        match self {
            Value::Int(i) => i.checked_sub(1).map(Value::Int),
            Value::Bool(true) => Some(Value::Bool(false)),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", x.get()),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_rejects_nan() {
        assert!(Finite::new(f64::NAN).is_none());
        assert!(Finite::new(1.5).is_some());
        assert!(Finite::new(f64::INFINITY).is_some());
    }

    #[test]
    fn finite_orders_totally() {
        let a = Finite::new(-1.0).unwrap();
        let b = Finite::new(0.0).unwrap();
        let c = Finite::new(f64::INFINITY).unwrap();
        assert!(a < b && b < c);
        assert_eq!(Finite::new(0.0).unwrap(), Finite::new(-0.0).unwrap());
    }

    #[test]
    fn value_compare_same_type() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::str("abc").compare(&Value::str("abd")), Some(Ordering::Less));
        assert_eq!(Value::Bool(true).compare(&Value::Bool(true)), Some(Ordering::Equal));
    }

    #[test]
    fn value_compare_cross_type_is_none() {
        assert_eq!(Value::Int(1).compare(&Value::str("1")), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn successor_predecessor_int() {
        assert_eq!(Value::Int(3).successor(), Some(Value::Int(4)));
        assert_eq!(Value::Int(3).predecessor(), Some(Value::Int(2)));
        assert_eq!(Value::Int(i64::MAX).successor(), None);
        assert_eq!(Value::Int(i64::MIN).predecessor(), None);
    }

    #[test]
    fn successor_not_defined_for_dense_types() {
        assert_eq!(Value::str("a").successor(), None);
        assert_eq!(Value::float(1.0).unwrap().successor(), None);
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("SFI").to_string(), "\"SFI\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn data_type_reporting() {
        assert_eq!(Value::Int(0).data_type(), DataType::Int);
        assert_eq!(Value::str("x").data_type(), DataType::Str);
        assert_eq!(Value::Bool(false).data_type(), DataType::Bool);
        assert_eq!(Value::float(0.5).unwrap().data_type(), DataType::Float);
    }
}
