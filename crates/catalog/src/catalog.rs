//! The catalog: immutable schema registry with name/id lookups.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::CatalogError;
use crate::ids::{AttrId, AttrRef, ClassId, RelId};
use crate::schema::{
    AttributeDef, ClassDef, IndexKind, Multiplicity, RelationshipDef, RelationshipEnd,
};
use crate::types::DataType;

/// An immutable, validated schema.
///
/// Built once through [`CatalogBuilder`], then shared (`Arc<Catalog>`) by the
/// constraint store, the optimizer, the storage engine and the generators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    classes: Vec<ClassDef>,
    relationships: Vec<RelationshipDef>,
    class_by_name: HashMap<String, ClassId>,
    rel_by_name: HashMap<String, RelId>,
    /// Per class: attribute name -> id.
    attr_by_name: Vec<HashMap<String, AttrId>>,
}

impl Catalog {
    pub fn builder() -> CatalogBuilder {
        CatalogBuilder::default()
    }

    /// Rebuilds a catalog from its raw definition lists — the snapshot-load
    /// path. Re-runs every check [`CatalogBuilder`] performs (duplicate
    /// class/attribute/relationship names, relationship ends in class range,
    /// inheritance acyclicity), so an untrusted definition list can never
    /// produce a catalog the builder would have rejected.
    ///
    /// # Errors
    /// The same [`CatalogError`] variants the staged builder returns.
    pub fn from_parts(
        classes: Vec<ClassDef>,
        relationships: Vec<RelationshipDef>,
    ) -> Result<Catalog, CatalogError> {
        let mut builder = CatalogBuilder::default();
        for c in &classes {
            if builder.class_by_name.contains_key(&c.name) {
                return Err(CatalogError::DuplicateClass(c.name.clone()));
            }
            if let Some(p) = c.parent {
                if p.index() >= classes.len() {
                    return Err(CatalogError::UnknownParent { class: c.name.clone(), parent: p });
                }
            }
            for (i, a) in c.attributes.iter().enumerate() {
                if c.attributes[..i].iter().any(|x| x.name == a.name) {
                    return Err(CatalogError::DuplicateAttribute {
                        class: c.name.clone(),
                        attr: a.name.clone(),
                    });
                }
            }
            let id = ClassId(builder.classes.len() as u32);
            builder.class_by_name.insert(c.name.clone(), id);
            builder.classes.push(c.clone());
        }
        for r in relationships {
            // Reuses the builder's end-class range check and duplicate-name
            // check.
            builder.relationship(r.name, r.left, r.right)?;
        }
        builder.build() // runs the inheritance-cycle check
    }

    // ---- class lookups -------------------------------------------------

    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.classes.iter().enumerate().map(|(i, c)| (ClassId(i as u32), c))
    }

    pub fn class(&self, id: ClassId) -> Result<&ClassDef, CatalogError> {
        self.classes.get(id.index()).ok_or(CatalogError::UnknownClassId(id))
    }

    pub fn class_id(&self, name: &str) -> Result<ClassId, CatalogError> {
        self.class_by_name
            .get(name)
            .copied()
            .ok_or_else(|| CatalogError::UnknownClass(name.to_string()))
    }

    pub fn class_name(&self, id: ClassId) -> &str {
        self.classes.get(id.index()).map(|c| c.name.as_str()).unwrap_or("<unknown-class>")
    }

    // ---- attribute lookups ----------------------------------------------

    pub fn attr(&self, r: AttrRef) -> Result<&AttributeDef, CatalogError> {
        let class = self.class(r.class)?;
        class
            .attributes
            .get(r.attr.index())
            .ok_or(CatalogError::UnknownAttrId { class: r.class, attr: r.attr })
    }

    pub fn attr_id(&self, class: ClassId, name: &str) -> Result<AttrId, CatalogError> {
        let map =
            self.attr_by_name.get(class.index()).ok_or(CatalogError::UnknownClassId(class))?;
        map.get(name).copied().ok_or_else(|| CatalogError::UnknownAttribute {
            class: self.class_name(class).to_string(),
            attr: name.to_string(),
        })
    }

    /// Resolves `"class.attr"` textual references used by parsers and DSLs.
    pub fn attr_ref(&self, class: &str, attr: &str) -> Result<AttrRef, CatalogError> {
        let class = self.class_id(class)?;
        let attr = self.attr_id(class, attr)?;
        Ok(AttrRef { class, attr })
    }

    pub fn attr_name(&self, r: AttrRef) -> &str {
        self.attr(r).map(|a| a.name.as_str()).unwrap_or("<unknown-attr>")
    }

    /// `"class.attr"` rendering used by the pretty printers.
    pub fn qualified_attr_name(&self, r: AttrRef) -> String {
        format!("{}.{}", self.class_name(r.class), self.attr_name(r))
    }

    pub fn attr_type(&self, r: AttrRef) -> Result<DataType, CatalogError> {
        self.attr(r).map(|a| a.ty)
    }

    /// Whether the attribute has an index — the branch condition of the
    /// paper's Tables 3.1/3.2.
    pub fn is_indexed(&self, r: AttrRef) -> bool {
        self.attr(r).map(|a| a.is_indexed()).unwrap_or(false)
    }

    pub fn index_kind(&self, r: AttrRef) -> Option<IndexKind> {
        self.attr(r).ok().and_then(|a| a.index)
    }

    // ---- relationship lookups --------------------------------------------

    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }

    pub fn relationships(&self) -> impl Iterator<Item = (RelId, &RelationshipDef)> {
        self.relationships.iter().enumerate().map(|(i, r)| (RelId(i as u32), r))
    }

    pub fn relationship(&self, id: RelId) -> Result<&RelationshipDef, CatalogError> {
        self.relationships.get(id.index()).ok_or(CatalogError::UnknownRelId(id))
    }

    pub fn rel_id(&self, name: &str) -> Result<RelId, CatalogError> {
        self.rel_by_name
            .get(name)
            .copied()
            .ok_or_else(|| CatalogError::UnknownRelationship(name.to_string()))
    }

    pub fn rel_name(&self, id: RelId) -> &str {
        self.relationships.get(id.index()).map(|r| r.name.as_str()).unwrap_or("<unknown-rel>")
    }

    /// All relationships touching `class`.
    pub fn relationships_of(&self, class: ClassId) -> Vec<RelId> {
        self.relationships().filter(|(_, r)| r.involves(class)).map(|(id, _)| id).collect()
    }

    /// Whether `class` is `ancestor` or inherits (transitively) from it.
    pub fn is_subclass_of(&self, class: ClassId, ancestor: ClassId) -> bool {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.classes.get(c.index()).and_then(|d| d.parent);
        }
        false
    }
}

/// Staged, validating constructor for [`Catalog`].
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    classes: Vec<ClassDef>,
    relationships: Vec<RelationshipDef>,
    class_by_name: HashMap<String, ClassId>,
    rel_by_name: HashMap<String, RelId>,
}

impl CatalogBuilder {
    /// Adds a root class. Attribute order fixes [`AttrId`] assignment.
    pub fn class(
        &mut self,
        name: impl Into<String>,
        attributes: Vec<AttributeDef>,
    ) -> Result<ClassId, CatalogError> {
        self.class_with_parent(name, attributes, None)
    }

    /// Adds a subclass; the parent's attributes are prepended so the subclass
    /// sees the combined attribute list under its own ids (matching the
    /// paper's schema where `driver` repeats `employee`'s attributes).
    pub fn subclass(
        &mut self,
        name: impl Into<String>,
        parent: ClassId,
        own_attributes: Vec<AttributeDef>,
    ) -> Result<ClassId, CatalogError> {
        self.class_with_parent(name, own_attributes, Some(parent))
    }

    fn class_with_parent(
        &mut self,
        name: impl Into<String>,
        attributes: Vec<AttributeDef>,
        parent: Option<ClassId>,
    ) -> Result<ClassId, CatalogError> {
        let name = name.into();
        if self.class_by_name.contains_key(&name) {
            return Err(CatalogError::DuplicateClass(name));
        }
        let mut all_attrs = Vec::new();
        if let Some(p) = parent {
            let pdef = self
                .classes
                .get(p.index())
                .ok_or(CatalogError::UnknownParent { class: name.clone(), parent: p })?;
            all_attrs.extend(pdef.attributes.iter().cloned());
        }
        for a in attributes {
            if all_attrs.iter().any(|x| x.name == a.name) {
                return Err(CatalogError::DuplicateAttribute { class: name, attr: a.name });
            }
            all_attrs.push(a);
        }
        let id = ClassId(self.classes.len() as u32);
        self.class_by_name.insert(name.clone(), id);
        self.classes.push(ClassDef { name, attributes: all_attrs, parent });
        Ok(id)
    }

    /// Declares a binary relationship.
    pub fn relationship(
        &mut self,
        name: impl Into<String>,
        left: RelationshipEnd,
        right: RelationshipEnd,
    ) -> Result<RelId, CatalogError> {
        let name = name.into();
        if self.rel_by_name.contains_key(&name) {
            return Err(CatalogError::DuplicateRelationship(name));
        }
        for end in [&left, &right] {
            if end.class.index() >= self.classes.len() {
                return Err(CatalogError::UnknownClassId(end.class));
            }
        }
        let id = RelId(self.relationships.len() as u32);
        self.rel_by_name.insert(name.clone(), id);
        self.relationships.push(RelationshipDef { name, left, right });
        Ok(id)
    }

    /// Convenience: a many-to-one relationship `many_side >- one_side` where
    /// every instance on the many side participates (the common case for
    /// pointer attributes in the paper's schema).
    pub fn many_to_one(
        &mut self,
        name: impl Into<String>,
        many_side: ClassId,
        one_side: ClassId,
    ) -> Result<RelId, CatalogError> {
        self.relationship(
            name,
            RelationshipEnd::new(many_side, Multiplicity::One, true),
            RelationshipEnd::new(one_side, Multiplicity::Many, false),
        )
    }

    pub fn build(self) -> Result<Catalog, CatalogError> {
        // Validate the is-a forest (indices only grow, so cycles are
        // impossible by construction, but keep the check for future mutable
        // builders).
        for (i, c) in self.classes.iter().enumerate() {
            let mut seen = vec![false; self.classes.len()];
            let mut cur = c.parent;
            seen[i] = true;
            while let Some(p) = cur {
                if seen[p.index()] {
                    return Err(CatalogError::InheritanceCycle(c.name.clone()));
                }
                seen[p.index()] = true;
                cur = self.classes.get(p.index()).ok_or(CatalogError::UnknownClassId(p))?.parent;
            }
        }
        let attr_by_name = self
            .classes
            .iter()
            .map(|c| {
                c.attributes
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (a.name.clone(), AttrId(i as u32)))
                    .collect()
            })
            .collect();
        Ok(Catalog {
            classes: self.classes,
            relationships: self.relationships,
            class_by_name: self.class_by_name,
            rel_by_name: self.rel_by_name,
            attr_by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::IndexKind;

    fn tiny() -> Catalog {
        let mut b = Catalog::builder();
        let s = b
            .class(
                "supplier",
                vec![
                    AttributeDef::indexed("name", DataType::Str, IndexKind::Hash),
                    AttributeDef::new("address", DataType::Str),
                ],
            )
            .unwrap();
        let c = b
            .class(
                "cargo",
                vec![
                    AttributeDef::indexed("code", DataType::Int, IndexKind::BTree),
                    AttributeDef::new("desc", DataType::Str),
                    AttributeDef::new("quantity", DataType::Int),
                ],
            )
            .unwrap();
        b.many_to_one("supplies", c, s).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookups_by_name_and_id() {
        let cat = tiny();
        let s = cat.class_id("supplier").unwrap();
        assert_eq!(cat.class_name(s), "supplier");
        let r = cat.attr_ref("cargo", "desc").unwrap();
        assert_eq!(cat.attr_name(r), "desc");
        assert_eq!(cat.qualified_attr_name(r), "cargo.desc");
        assert_eq!(cat.attr_type(r).unwrap(), DataType::Str);
        assert!(!cat.is_indexed(r));
        let code = cat.attr_ref("cargo", "code").unwrap();
        assert!(cat.is_indexed(code));
        assert_eq!(cat.index_kind(code), Some(IndexKind::BTree));
    }

    #[test]
    fn unknown_names_error() {
        let cat = tiny();
        assert!(matches!(cat.class_id("nope"), Err(CatalogError::UnknownClass(_))));
        assert!(matches!(
            cat.attr_ref("cargo", "nope"),
            Err(CatalogError::UnknownAttribute { .. })
        ));
        assert!(matches!(cat.rel_id("nope"), Err(CatalogError::UnknownRelationship(_))));
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut b = Catalog::builder();
        b.class("x", vec![]).unwrap();
        assert!(matches!(b.class("x", vec![]), Err(CatalogError::DuplicateClass(_))));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut b = Catalog::builder();
        let err = b.class(
            "x",
            vec![AttributeDef::new("a", DataType::Int), AttributeDef::new("a", DataType::Str)],
        );
        assert!(matches!(err, Err(CatalogError::DuplicateAttribute { .. })));
    }

    #[test]
    fn subclass_inherits_attributes() {
        let mut b = Catalog::builder();
        let emp = b
            .class(
                "employee",
                vec![
                    AttributeDef::new("name", DataType::Str),
                    AttributeDef::new("rank", DataType::Str),
                ],
            )
            .unwrap();
        let drv = b
            .subclass("driver", emp, vec![AttributeDef::new("license_class", DataType::Int)])
            .unwrap();
        let cat = b.build().unwrap();
        // Inherited attrs come first, own attrs after.
        assert_eq!(cat.attr_id(drv, "name").unwrap(), AttrId(0));
        assert_eq!(cat.attr_id(drv, "license_class").unwrap(), AttrId(2));
        assert!(cat.is_subclass_of(drv, emp));
        assert!(!cat.is_subclass_of(emp, drv));
    }

    #[test]
    fn relationship_lookup_and_involvement() {
        let cat = tiny();
        let rel = cat.rel_id("supplies").unwrap();
        let def = cat.relationship(rel).unwrap();
        let cargo = cat.class_id("cargo").unwrap();
        let supplier = cat.class_id("supplier").unwrap();
        assert!(def.involves(cargo) && def.involves(supplier));
        assert_eq!(cat.relationships_of(cargo), vec![rel]);
        assert!(def.end_for(cargo).unwrap().total);
    }

    #[test]
    fn relationship_with_unknown_class_rejected() {
        let mut b = Catalog::builder();
        let x = b.class("x", vec![]).unwrap();
        let err = b.relationship(
            "r",
            RelationshipEnd::new(x, Multiplicity::One, true),
            RelationshipEnd::new(ClassId(99), Multiplicity::Many, false),
        );
        assert!(matches!(err, Err(CatalogError::UnknownClassId(_))));
    }
}
