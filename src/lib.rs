//! # sqo — semantic query optimization
//!
//! A faithful, production-grade Rust implementation of Pang, Lu & Ooi,
//! *An Efficient Semantic Query Optimization Algorithm* (ICDE 1991),
//! together with every substrate the paper depends on: an object-oriented
//! catalog, a query model with the paper's `(SELECT …)` syntax, a grouped
//! Horn-constraint store with materialized transitive closures, an
//! in-memory object store with a deterministic cost model, a conventional
//! planner/executor, the §4 baselines, and the full experiment workload.
//!
//! The crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module named after its role.
//!
//! ```
//! use std::sync::Arc;
//! use sqo::catalog::example::figure21;
//! use sqo::constraints::{figure22, ConstraintStore, StoreOptions};
//! use sqo::core::{SemanticOptimizer, StructuralOracle};
//! use sqo::query::{parse_query, QueryExt};
//!
//! let catalog = Arc::new(figure21().unwrap());
//! let store = ConstraintStore::build(
//!     Arc::clone(&catalog),
//!     figure22(&catalog).unwrap(),
//!     StoreOptions::paper_defaults(),
//! ).unwrap();
//! let optimizer = SemanticOptimizer::new(&store);
//!
//! // Figure 2.3's sample query, in the paper's own syntax.
//! let query = parse_query(
//!     r#"(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} {}
//!         {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
//!         {collects, supplies} {supplier, cargo, vehicle})"#,
//!     &catalog).unwrap();
//! let optimized = optimizer.optimize(&query, &StructuralOracle).unwrap();
//! println!("{}", optimized.query.display(&catalog));
//! ```

#![forbid(unsafe_code)]

/// Object-oriented catalog: classes, attributes, relationships, statistics.
pub mod catalog {
    pub use sqo_catalog::*;
}

/// Query model: predicates, AST, parser, printer, query graph.
pub mod query {
    pub use sqo_query::*;
}

/// Horn-clause constraints: pool, closure, grouped store.
pub mod constraints {
    pub use sqo_constraints::*;
}

/// The ICDE'91 algorithm: transformation table, tags, formulation.
pub mod core {
    pub use sqo_core::*;
}

/// In-memory object store with cost accounting.
pub mod storage {
    pub use sqo_storage::*;
}

/// Conventional planner, executor and the cost-based profit oracle.
pub mod exec {
    pub use sqo_exec::*;
}

/// Baseline optimizers (§4): straight-forward and exhaustive.
pub mod baseline {
    pub use sqo_baseline::*;
}

/// Serving layer: concurrent query service with a sharded, epoch-keyed
/// semantic-plan cache.
pub mod service {
    pub use sqo_service::*;
}

/// Non-blocking request frontend: reactor, singleflight, admission
/// control and load shedding over the serving layer.
pub mod frontend {
    pub use sqo_frontend::*;
}

/// Experiment workload: schemas, generators, paper scenarios.
pub mod workload {
    pub use sqo_workload::*;
}
